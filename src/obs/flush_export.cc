#include "obs/flush_export.h"

#include "obs/prom.h"
#include "util/json_parse.h"

namespace wira::obs {

void LineTail::add(std::string_view chunk,
                   const std::function<void(std::string_view line)>& on_line) {
  size_t start = 0;
  while (start < chunk.size()) {
    const size_t nl = chunk.find('\n', start);
    if (nl == std::string_view::npos) {
      partial_.append(chunk.substr(start));
      return;
    }
    if (partial_.empty()) {
      on_line(chunk.substr(start, nl - start));
    } else {
      partial_.append(chunk.substr(start, nl - start));
      on_line(partial_);
      partial_.clear();
    }
    start = nl + 1;
  }
}

namespace {

using util::JsonValue;

bool parse_dist(const JsonValue& obj, FlushDist* out) {
  const JsonValue* count = obj.find("count", JsonValue::Kind::kNumber);
  const JsonValue* mean = obj.find("mean", JsonValue::Kind::kNumber);
  const JsonValue* p50 = obj.find("p50", JsonValue::Kind::kNumber);
  const JsonValue* p90 = obj.find("p90", JsonValue::Kind::kNumber);
  const JsonValue* p99 = obj.find("p99", JsonValue::Kind::kNumber);
  if (count == nullptr || mean == nullptr || p50 == nullptr ||
      p90 == nullptr || p99 == nullptr) {
    return false;
  }
  out->present = true;
  out->count = static_cast<uint64_t>(count->number);
  out->mean = mean->number;
  out->p50 = p50->number;
  out->p90 = p90->number;
  out->p99 = p99->number;
  return true;
}

}  // namespace

bool parse_flush_line(std::string_view line, FlushSummary* out,
                      std::string* error) {
  *out = FlushSummary{};
  JsonValue doc;
  if (!util::parse_json(line, &doc, error)) return false;
  if (!doc.is_object()) {
    *error = "flush line is not an object";
    return false;
  }
  const JsonValue* sessions = doc.find("sessions", JsonValue::Kind::kNumber);
  if (sessions == nullptr) {
    *error = "flush line has no sessions count";
    return false;
  }
  out->sessions = static_cast<uint64_t>(sessions->number);
  const JsonValue* final_flag = doc.find("final", JsonValue::Kind::kBool);
  if (final_flag == nullptr) {
    *error = "flush line has no final flag";
    return false;
  }
  out->final_line = final_flag->boolean;
  if (const JsonValue* rss = doc.find("rss_mb", JsonValue::Kind::kNumber)) {
    out->rss_mb = rss->number;
  }
  if (const JsonValue* dumps =
          doc.find("anomaly_dumps", JsonValue::Kind::kObject)) {
    for (const auto& [trigger, count] : dumps->object) {
      if (!count.is_number()) {
        *error = "anomaly_dumps trigger \"" + trigger + "\" is not a number";
        return false;
      }
      out->anomaly_dumps.emplace_back(
          trigger, static_cast<uint64_t>(count.number));
    }
  }
  if (const JsonValue* dispatch =
          doc.find("dispatch", JsonValue::Kind::kObject)) {
    const JsonValue* busy = dispatch->find("busy", JsonValue::Kind::kNumber);
    if (busy == nullptr) {
      *error = "dispatch block has no busy count";
      return false;
    }
    out->dispatch_busy = static_cast<uint64_t>(busy->number);
    const JsonValue* chunks =
        dispatch->find("chunks", JsonValue::Kind::kObject);
    if (chunks == nullptr) {
      *error = "dispatch block has no chunks object";
      return false;
    }
    for (const auto& [worker, count] : chunks->object) {
      if (!count.is_number()) {
        *error = "dispatch chunk count for worker \"" + worker +
                 "\" is not a number";
        return false;
      }
      out->dispatch_chunks.emplace_back(
          worker, static_cast<uint64_t>(count.number));
    }
  }
  const JsonValue* schemes = doc.find("schemes", JsonValue::Kind::kObject);
  if (schemes == nullptr) {
    *error = "flush line has no schemes object";
    return false;
  }
  for (const auto& [name, entry] : schemes->object) {
    if (!entry.is_object()) {
      *error = "scheme \"" + name + "\" is not an object";
      return false;
    }
    FlushSchemeSummary s;
    const JsonValue* count = entry.find("sessions", JsonValue::Kind::kNumber);
    if (count == nullptr) {
      *error = "scheme \"" + name + "\" has no sessions count";
      return false;
    }
    s.sessions = static_cast<uint64_t>(count->number);
    if (const JsonValue* d =
            entry.find("ffct_ms", JsonValue::Kind::kObject)) {
      if (!parse_dist(*d, &s.ffct_ms)) {
        *error = "scheme \"" + name + "\" has a malformed ffct_ms block";
        return false;
      }
    }
    if (const JsonValue* d =
            entry.find("fflr_ppm", JsonValue::Kind::kObject)) {
      if (!parse_dist(*d, &s.fflr_ppm)) {
        *error = "scheme \"" + name + "\" has a malformed fflr_ppm block";
        return false;
      }
    }
    out->schemes.emplace_back(name, s);
  }
  return true;
}

void ExporterState::ingest(std::string_view chunk) {
  tail_.add(chunk, [this](std::string_view line) {
    if (line.empty()) return;
    ++lines_total_;
    FlushSummary parsed;
    std::string error;
    if (parse_flush_line(line, &parsed, &error)) {
      summary_ = std::move(parsed);
    } else {
      ++parse_errors_;
    }
  });
}

namespace {

/// Renders one quantile block as a prometheus summary.  `_sum` is
/// reconstructed as mean * count: the flush line carries the mean, not
/// the sum, and the two are tied by definition.
void render_summary_family(PromTextBuilder& b, const std::string& family,
                           const FlushSummary& flush,
                           FlushDist FlushSchemeSummary::*dist) {
  bool any = false;
  for (const auto& [scheme, s] : flush.schemes) {
    if ((s.*dist).present) any = true;
  }
  if (!any) return;
  b.family(family, "summary", "");
  for (const auto& [scheme, s] : flush.schemes) {
    const FlushDist& d = s.*dist;
    if (!d.present) continue;
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", d.p50}, {"0.9", d.p90}, {"0.99", d.p99}};
    for (const auto& [q, v] : quantiles) {
      b.sample(family, {{"scheme", scheme}, {"quantile", q}}, v);
    }
    b.sample(family + "_sum", {{"scheme", scheme}}, d.mean *
                                                        static_cast<double>(
                                                            d.count));
    b.sample(family + "_count", {{"scheme", scheme}}, d.count);
  }
}

}  // namespace

std::string ExporterState::render() const {
  PromTextBuilder b;
  if (summary_.has_value()) {
    const FlushSummary& flush = *summary_;
    b.family("wira_soak_sessions_total", "counter",
             "cumulative sessions aggregated by the tailed run");
    b.sample("wira_soak_sessions_total", {}, flush.sessions);
    b.family("wira_soak_final", "gauge",
             "1 once the tailed run wrote its final flush line");
    b.sample("wira_soak_final", {},
             static_cast<uint64_t>(flush.final_line ? 1 : 0));
    if (flush.rss_mb.has_value()) {
      b.family("wira_soak_rss_mb", "gauge",
               "resident set of the tailed run at its last flush");
      b.sample("wira_soak_rss_mb", {}, *flush.rss_mb);
    }
    if (!flush.anomaly_dumps.empty()) {
      b.family("wira_anomaly_dumps_total", "counter",
               "flight-recorder anomaly dumps by trigger kind");
      for (const auto& [trigger, count] : flush.anomaly_dumps) {
        b.sample("wira_anomaly_dumps_total", {{"trigger", trigger}}, count);
      }
    }
    if (!flush.dispatch_chunks.empty()) {
      b.family("wira_dispatch_chunks_total", "counter",
               "dispatch chunks completed, by worker id");
      for (const auto& [worker, count] : flush.dispatch_chunks) {
        b.sample("wira_dispatch_chunks_total", {{"worker", worker}}, count);
      }
    }
    if (flush.dispatch_busy.has_value()) {
      b.family("wira_dispatch_worker_busy", "gauge",
               "high-watermark of workers holding an in-flight chunk");
      b.sample("wira_dispatch_worker_busy", {}, *flush.dispatch_busy);
    }
    if (!flush.schemes.empty()) {
      b.family("wira_soak_scheme_sessions_total", "counter", "");
      for (const auto& [scheme, s] : flush.schemes) {
        b.sample("wira_soak_scheme_sessions_total", {{"scheme", scheme}},
                 s.sessions);
      }
      render_summary_family(b, "wira_soak_ffct_ms", flush,
                            &FlushSchemeSummary::ffct_ms);
      render_summary_family(b, "wira_soak_fflr_ppm", flush,
                            &FlushSchemeSummary::fflr_ppm);
    }
  }
  b.family("wira_exporter_lines_total", "counter",
           "complete flush JSONL lines consumed");
  b.sample("wira_exporter_lines_total", {}, lines_total_);
  b.family("wira_exporter_parse_errors_total", "counter",
           "flush lines that failed to parse");
  b.sample("wira_exporter_parse_errors_total", {}, parse_errors_);
  b.family("wira_exporter_scrapes_total", "counter",
           "/metrics requests served");
  b.sample("wira_exporter_scrapes_total", {}, scrapes_);
  if (!version_.empty() || !git_sha_.empty()) {
    b.family("wira_build_info", "gauge",
             "build identity of the running exporter");
    b.sample("wira_build_info",
             {{"version", version_}, {"git_sha", git_sha_}},
             static_cast<uint64_t>(1));
  }
  if (uptime_seconds_ >= 0) {
    b.family("wira_process_uptime_seconds", "gauge",
             "seconds since the exporter started");
    b.sample("wira_process_uptime_seconds", {}, uptime_seconds_);
  }
  return b.take();
}

}  // namespace wira::obs
