#include "obs/rss.h"

#include <cstdio>
#include <cstring>

namespace wira::obs {

namespace {

/// Reads one "Vm...:  <n> kB" field out of a /proc-style status file.
/// Plain stdio on purpose: this is sampled inside soak progress loops and
/// must not itself allocate per call.  nullopt = file unreadable or field
/// absent/malformed (the monostate contract in the header).
std::optional<uint64_t> status_field_kb(const char* path, const char* field) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return std::nullopt;
  const size_t field_len = std::strlen(field);
  char line[256];
  std::optional<uint64_t> kb;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    unsigned long long v = 0;
    if (std::sscanf(line + field_len + 1, "%llu", &v) == 1) {
      kb = static_cast<uint64_t>(v);
    }
    break;
  }
  std::fclose(f);
  return kb;
}

std::optional<uint64_t> to_bytes(std::optional<uint64_t> kb) {
  if (!kb.has_value()) return std::nullopt;
  return *kb * 1024;
}

}  // namespace

std::optional<uint64_t> RssReader::current_rss_bytes() const {
  return to_bytes(status_field_kb(status_path_.c_str(), "VmRSS"));
}

std::optional<uint64_t> RssReader::peak_rss_bytes() const {
  return to_bytes(status_field_kb(status_path_.c_str(), "VmHWM"));
}

std::optional<uint64_t> current_rss_bytes() {
  return RssReader().current_rss_bytes();
}

std::optional<uint64_t> peak_rss_bytes() {
  return RssReader().peak_rss_bytes();
}

}  // namespace wira::obs
