#include "obs/rss.h"

#include <cstdio>
#include <cstring>

namespace wira::obs {

namespace {

/// Reads one "Vm...:  <n> kB" field out of /proc/self/status.  Plain
/// stdio on purpose: this is sampled inside soak progress loops and must
/// not itself allocate per call.
uint64_t status_field_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    unsigned long long v = 0;
    if (std::sscanf(line + field_len + 1, "%llu", &v) == 1) {
      kb = static_cast<uint64_t>(v);
    }
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

uint64_t current_rss_bytes() { return status_field_kb("VmRSS") * 1024; }

uint64_t peak_rss_bytes() { return status_field_kb("VmHWM") * 1024; }

}  // namespace wira::obs
