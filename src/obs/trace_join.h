// Cross-vantage qlog join (the external check on the FFCT phase split).
//
// A --trace-sample'd session produces a *pair* of standard-qlog files —
// <name>.server.sqlog and <name>.client.sqlog, correlated by a shared
// group_id — because the phase boundaries live on different hosts: the
// server knows when it saw the PLAY request, fetched origin bytes and
// finished the FF_Size parse; only the client knows when its request
// departed, when the contiguous stream reached the first video byte, and
// when frame 1 completed.  This library re-reads both files, joins them,
// and recomputes the same clamped phase partition obs::ffct_phases builds
// in-session — so the paper's phase split is checkable from the trace
// artifacts alone, by anyone, without re-running the simulation.
//
// Precision contract: qlog times are milliseconds with a 3-digit fraction
// (microseconds; obs/qlog.cc append_ms truncates nanoseconds).  Truncation
// is monotone, and the phase partition is built purely from clamp/max over
// boundaries, so clamping truncated boundaries equals truncating clamped
// boundaries: every joined span boundary must equal the in-session
// PhaseTimeline boundary truncated to microseconds *exactly* — no epsilon.
// joined_matches_phases asserts precisely that.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/phase_timeline.h"

namespace wira::obs {

/// Marker timestamps in microseconds; "absent" sentinel.
inline constexpr uint64_t kNoTimeUs = UINT64_MAX;

/// One parsed .sqlog file: header identity plus the first occurrence of
/// each marker event the join needs (all times in microseconds — the
/// file's native precision).
struct ParsedQlog {
  std::string title;
  std::string group_id;
  std::string vantage_name;
  std::string vantage_type;  ///< "client" / "server" / "network"

  // Client-vantage markers.
  uint64_t request_sent_us = kNoTimeUs;
  uint64_t first_video_byte_us = kNoTimeUs;
  uint64_t first_frame_complete_us = kNoTimeUs;  ///< frame_index == 1

  // Server-vantage markers.
  uint64_t request_received_us = kNoTimeUs;
  uint64_t first_origin_byte_us = kNoTimeUs;
  uint64_t ff_parsed_us = kNoTimeUs;

  size_t events = 0;         ///< event lines parsed
  size_t stall_events = 0;   ///< wira:stall_observed count (client vantage)
};

/// Parses one .sqlog (header line + JSONL events).  Fails on unparsable
/// JSON, a malformed header, or a malformed time — extra/unknown events
/// are fine (the join only reads its markers).
bool parse_sqlog_text(std::string_view text, ParsedQlog* out,
                      std::string* error);
bool parse_sqlog_file(const std::string& path, ParsedQlog* out,
                      std::string* error);

/// The client-derived phase split of one joined pair.
struct JoinedPhases {
  struct Span {
    const char* name = "";
    uint64_t begin_us = 0;
    uint64_t end_us = 0;
    uint64_t duration_us() const { return end_us - begin_us; }
  };
  std::array<Span, kNumPhases> spans;
  uint64_t ffct_us = 0;  ///< == sum of span durations by construction
};

/// Joins a client/server vantage pair and recomputes the phase split from
/// the client's view.  Fails when the group_ids differ, the vantage types
/// are not client/server, or the client markers that anchor the partition
/// (request_sent, frame 1 complete) are missing.  Server markers may be
/// absent (they clamp to zero-length spans, as in-session).
bool join_vantages(const ParsedQlog& client, const ParsedQlog& server,
                   JoinedPhases* out, std::string* error);

/// Exact comparison of a joined split against the in-session
/// PhaseTimeline (SessionResult::phases): every boundary must equal the
/// nanosecond boundary truncated to microseconds, shifted to the trace's
/// absolute clock.  Returns false and describes the first divergence.
bool joined_matches_phases(const JoinedPhases& joined,
                           const std::vector<PhaseSpan>& phases,
                           std::string* why);

}  // namespace wira::obs
