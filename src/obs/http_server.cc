#include "obs/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace wira::obs {

namespace {

/// Requests larger than this are rejected with 400: a GET line plus a few
/// scrape headers fits in a fraction of it.
constexpr size_t kMaxRequestBytes = 8192;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

std::string serialize_response(const MiniHttpServer::Response& r) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += status_text(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

MiniHttpServer::~MiniHttpServer() { stop(); }

bool MiniHttpServer::start(uint16_t port, std::string* error) {
  stop();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    stop();
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    stop();
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    stop();
    return false;
  }
  port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(listen_fd_)) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    stop();
    return false;
  }
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    *error = std::string("epoll_create1: ") + std::strerror(errno);
    stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    *error = std::string("epoll_ctl: ") + std::strerror(errno);
    stop();
    return false;
  }
  return true;
}

void MiniHttpServer::stop() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  port_ = 0;
}

void MiniHttpServer::poll(int timeout_ms) {
  if (epoll_fd_ < 0) return;
  epoll_event events[32];
  const int n = ::epoll_wait(epoll_fd_, events, 32, timeout_ms);
  for (int i = 0; i < n; ++i) {
    if (events[i].data.fd == listen_fd_) {
      accept_ready();
    } else {
      conn_ready(events[i].data.fd, events[i].events);
    }
  }
}

void MiniHttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: try next poll
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, Conn{});
  }
}

void MiniHttpServer::conn_ready(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd);
    return;
  }
  if (!conn.responding && (events & EPOLLIN) != 0) {
    char chunk[4096];
    bool peer_eof = false;
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(fd);
        return;
      }
      if (n == 0) {  // FIN: no more request bytes will arrive
        peer_eof = true;
        break;
      }
      conn.in.append(chunk, static_cast<size_t>(n));
      if (conn.in.size() > kMaxRequestBytes) break;
    }
    const bool oversized = conn.in.size() > kMaxRequestBytes;
    if (oversized || conn.in.find("\r\n\r\n") != std::string::npos) {
      // A half-close after a complete request is a legal one-shot HTTP
      // exchange (the client signals "done sending" and waits for the
      // body); the response must still go out on the intact write half.
      make_response(fd, conn);
    } else if (peer_eof) {
      close_conn(fd);  // peer closed before a full request
      return;
    }
  }
  if (conn.responding && (events & (EPOLLOUT | EPOLLIN)) != 0) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::write(fd, conn.out.data() + conn.out_off,
                                conn.out.size() - conn.out_off);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // The kernel send buffer is full behind a slow reader.  Re-arm
          // write interest before parking: the fd must be watched for
          // EPOLLOUT or the pending response would never drain.
          arm_write(fd);
          return;  // next poll
        }
        break;
      }
      conn.out_off += static_cast<size_t>(n);
    }
    close_conn(fd);
  }
}

void MiniHttpServer::arm_write(int fd) {
  epoll_event ev{};
  ev.events = EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void MiniHttpServer::make_response(int fd, Conn& conn) {
  Response resp;
  if (conn.in.size() > kMaxRequestBytes) {
    resp.status = 400;
    resp.body = "request too large\n";
  } else {
    // Request line: METHOD SP PATH SP VERSION.
    const size_t line_end = conn.in.find("\r\n");
    const std::string line = conn.in.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      resp.status = 400;
      resp.body = "malformed request line\n";
    } else if (line.substr(0, sp1) != "GET") {
      resp.status = 405;
      resp.body = "only GET is supported\n";
    } else {
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      if (handler_) {
        resp = handler_(path);
      } else {
        resp.status = 404;
        resp.body = "not found\n";
      }
    }
  }
  requests_served_++;
  conn.out = serialize_response(resp);
  conn.responding = true;
  // Switch interest to writability; the caller falls through to the write
  // branch in this same conn_ready pass (its event mask includes EPOLLIN),
  // so scrape responses that fit the socket buffer complete immediately.
  arm_write(fd);
}

void MiniHttpServer::close_conn(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(fd);
}

}  // namespace wira::obs
