#include "obs/trace_join.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json_parse.h"

namespace wira::obs {

namespace {

using util::JsonValue;

bool parse_header(const JsonValue& doc, ParsedQlog* out, std::string* error) {
  if (!doc.is_object()) {
    *error = "header line is not an object";
    return false;
  }
  if (const JsonValue* title = doc.find("title", JsonValue::Kind::kString)) {
    out->title = title->str;
  }
  const JsonValue* trace = doc.find("trace", JsonValue::Kind::kObject);
  if (trace == nullptr) {
    *error = "header has no trace object";
    return false;
  }
  const JsonValue* vp =
      trace->find("vantage_point", JsonValue::Kind::kObject);
  if (vp == nullptr) {
    *error = "header has no vantage_point";
    return false;
  }
  if (const JsonValue* name = vp->find("name", JsonValue::Kind::kString)) {
    out->vantage_name = name->str;
  }
  const JsonValue* type = vp->find("type", JsonValue::Kind::kString);
  if (type == nullptr) {
    *error = "vantage_point has no type";
    return false;
  }
  out->vantage_type = type->str;
  if (const JsonValue* common =
          trace->find("common_fields", JsonValue::Kind::kObject)) {
    if (const JsonValue* gid =
            common->find("group_id", JsonValue::Kind::kString)) {
      out->group_id = gid->str;
    }
  }
  return true;
}

/// Records the first occurrence only: the partition anchors on first
/// markers, matching Tracer::first_time.
void note_first(uint64_t* slot, uint64_t t_us) {
  if (*slot == kNoTimeUs) *slot = t_us;
}

bool parse_event(const JsonValue& doc, ParsedQlog* out, std::string* error) {
  const JsonValue* name = doc.find("name", JsonValue::Kind::kString);
  const JsonValue* time = doc.find("time", JsonValue::Kind::kNumber);
  if (name == nullptr || time == nullptr) {
    *error = "event line missing name or time";
    return false;
  }
  uint64_t t_us = 0;
  if (!util::ms_text_to_us(time->raw_number, &t_us)) {
    *error = "unparsable event time \"" + time->raw_number + "\"";
    return false;
  }
  out->events++;
  const std::string& n = name->str;
  if (n == "wira:request_sent") {
    note_first(&out->request_sent_us, t_us);
  } else if (n == "wira:first_video_byte") {
    note_first(&out->first_video_byte_us, t_us);
  } else if (n == "wira:frame_complete") {
    const JsonValue* data = doc.find("data", JsonValue::Kind::kObject);
    const JsonValue* idx =
        data ? data->find("frame_index", JsonValue::Kind::kNumber) : nullptr;
    if (idx != nullptr && idx->raw_number == "1") {
      note_first(&out->first_frame_complete_us, t_us);
    }
  } else if (n == "wira:request_received") {
    note_first(&out->request_received_us, t_us);
  } else if (n == "wira:origin_byte") {
    note_first(&out->first_origin_byte_us, t_us);
  } else if (n == "wira:ff_parsed") {
    note_first(&out->ff_parsed_us, t_us);
  } else if (n == "wira:stall_observed") {
    out->stall_events++;
  }
  return true;
}

}  // namespace

bool parse_sqlog_text(std::string_view text, ParsedQlog* out,
                      std::string* error) {
  *out = ParsedQlog{};
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ++line_no;
    JsonValue doc;
    std::string json_error;
    if (!util::parse_json(line, &doc, &json_error)) {
      *error = "line " + std::to_string(line_no) + ": " + json_error;
      return false;
    }
    if (line_no == 1) {
      if (!parse_header(doc, out, error)) return false;
      continue;
    }
    if (!parse_event(doc, out, error)) {
      *error = "line " + std::to_string(line_no) + ": " + *error;
      return false;
    }
  }
  if (line_no == 0) {
    *error = "empty qlog file";
    return false;
  }
  return true;
}

bool parse_sqlog_file(const std::string& path, ParsedQlog* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_sqlog_text(buf.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool join_vantages(const ParsedQlog& client, const ParsedQlog& server,
                   JoinedPhases* out, std::string* error) {
  if (client.vantage_type != "client") {
    *error = "first trace has vantage type \"" + client.vantage_type +
             "\", expected \"client\"";
    return false;
  }
  if (server.vantage_type != "server") {
    *error = "second trace has vantage type \"" + server.vantage_type +
             "\", expected \"server\"";
    return false;
  }
  if (client.group_id != server.group_id) {
    *error = "group_id mismatch: client \"" + client.group_id +
             "\" vs server \"" + server.group_id + "\"";
    return false;
  }
  if (client.request_sent_us == kNoTimeUs) {
    *error = "client trace has no wira:request_sent";
    return false;
  }
  if (client.first_frame_complete_us == kNoTimeUs) {
    *error = "client trace has no frame-1 wira:frame_complete";
    return false;
  }
  const uint64_t start = client.request_sent_us;
  const uint64_t end = client.first_frame_complete_us;
  if (end < start) {
    *error = "frame 1 completed before the request departed";
    return false;
  }
  // Identical construction to obs::ffct_phases, in microsecond integers:
  // a missing boundary inherits the previous one; out-of-order boundaries
  // clamp into [cur, end].  Both clocks are the same simulated timeline
  // (reference_time 0), so cross-vantage boundaries compare directly.
  const uint64_t raw[kNumPhases - 1] = {
      server.request_received_us, server.first_origin_byte_us,
      server.ff_parsed_us, client.first_video_byte_us};
  uint64_t cur = start;
  for (size_t i = 0; i + 1 < kNumPhases; ++i) {
    const uint64_t t =
        raw[i] == kNoTimeUs ? cur : std::clamp(raw[i], cur, end);
    out->spans[i] = JoinedPhases::Span{kPhaseNames[i], cur, t};
    cur = t;
  }
  out->spans[kNumPhases - 1] =
      JoinedPhases::Span{kPhaseNames[kNumPhases - 1], cur, end};
  out->ffct_us = end - start;
  return true;
}

bool joined_matches_phases(const JoinedPhases& joined,
                           const std::vector<PhaseSpan>& phases,
                           std::string* why) {
  if (phases.size() != kNumPhases) {
    *why = "in-session phase list has " + std::to_string(phases.size()) +
           " spans, expected " + std::to_string(kNumPhases);
    return false;
  }
  for (size_t i = 0; i < kNumPhases; ++i) {
    const JoinedPhases::Span& j = joined.spans[i];
    const PhaseSpan& p = phases[i];
    if (std::string_view(j.name) != std::string_view(p.name)) {
      *why = "span " + std::to_string(i) + " name mismatch: joined \"" +
             j.name + "\" vs in-session \"" + p.name + "\"";
      return false;
    }
    // Truncation commutes with the clamped partition (monotone map), so
    // equality here is exact, not approximate.
    const uint64_t begin_us = static_cast<uint64_t>(p.begin) / 1000;
    const uint64_t end_us = static_cast<uint64_t>(p.end) / 1000;
    if (j.begin_us != begin_us || j.end_us != end_us) {
      *why = std::string("phase ") + p.name + " boundaries diverge: joined [" +
             std::to_string(j.begin_us) + ", " + std::to_string(j.end_us) +
             "] us vs in-session [" + std::to_string(begin_us) + ", " +
             std::to_string(end_us) + "] us";
      return false;
    }
  }
  return true;
}

}  // namespace wira::obs
