#include "obs/qlog.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "util/json.h"

namespace wira::obs {

namespace {

// qlog times are milliseconds; emit with microsecond precision using pure
// integer math so output never depends on ostream float state / locale.
void append_ms(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000000,
                (ns % 1000000) / 1000);
  out += buf;
}

void append_kv(std::string& out, const char* key, uint64_t value) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

void append_kv(std::string& out, const char* key, const std::string& value) {
  out += '"';
  out += key;
  out += "\": \"";
  util::append_json_escaped(out, value);
  out += '"';
}

void append_kv_ms(std::string& out, const char* key, uint64_t us) {
  out += '"';
  out += key;
  out += "\": ";
  append_ms(out, us * 1000);
}

/// The event's "data" member, serialized per the mapping in DESIGN.md §7.
void append_data(std::string& out, const trace::Event& e) {
  using trace::EventType;
  out += '{';
  switch (e.type) {
    case EventType::kPacketSent:
    case EventType::kPacketReceived:
    case EventType::kPacketLost:
      out += "\"header\": {";
      append_kv(out, "packet_number", e.a);
      out += "}, \"raw\": {";
      append_kv(out, "length", e.b);
      out += '}';
      break;
    case EventType::kPacketAcked:
      out += "\"acked_ranges\": [[";
      out += std::to_string(e.a);
      out += ", ";
      out += std::to_string(e.a);
      out += "]], ";
      append_kv(out, "length", e.b);
      break;
    case EventType::kPtoFired:
      append_kv(out, "event_type", std::string("expired"));
      out += ", ";
      append_kv(out, "timer_type", std::string("pto"));
      out += ", ";
      append_kv(out, "pto_count", e.a);
      break;
    case EventType::kRttSample:
      append_kv_ms(out, "latest_rtt", e.a);
      out += ", ";
      append_kv_ms(out, "smoothed_rtt", e.b);
      break;
    case EventType::kCwndSample:
      append_kv(out, "congestion_window", e.a);
      out += ", ";
      append_kv(out, "bytes_in_flight", e.b);
      break;
    case EventType::kPacingSample:
      // qlog pacing_rate is bits per second; the tracer records bytes/s.
      append_kv(out, "pacing_rate", e.a * 8);
      break;
    case EventType::kCcStateChanged:
      append_kv(out, "new", e.detail);
      break;
    case EventType::kHandshakeEvent:
      if (e.detail == "established") {
        append_kv(out, "new", e.detail);
        out += ", \"zero_rtt\": ";
        out += e.a == 0 ? "true" : "false";
      } else {
        append_kv(out, "message", e.detail);
      }
      break;
    case EventType::kInitApplied:
      append_kv(out, "init_cwnd", e.a);
      out += ", ";
      append_kv(out, "init_pacing", e.b);
      break;
    case EventType::kCookieEvent:
      append_kv(out, "action", e.detail);
      out += ", ";
      append_kv(out, "size", e.a);
      break;
    case EventType::kFrameComplete:
      append_kv(out, "frame_index", e.a);
      out += ", ";
      append_kv(out, "bytes", e.b);
      break;
    case EventType::kRequestReceived:
      append_kv(out, "bytes", e.a);
      break;
    case EventType::kOriginByte:
      append_kv(out, "chunk_bytes", e.a);
      break;
    case EventType::kFfParsed:
      append_kv(out, "ff_size", e.a);
      out += ", ";
      append_kv(out, "bytes_fed", e.b);
      break;
    case EventType::kCornerCase:
      append_kv(out, "kind", e.detail);
      out += ", ";
      append_kv(out, "init_cwnd", e.a);
      break;
    case EventType::kRequestSent:
      append_kv(out, "bytes", e.a);
      break;
    case EventType::kFirstVideoByte:
      append_kv(out, "total_bytes", e.a);
      break;
    case EventType::kStallObserved:
      append_kv(out, "kind", e.detail);
      out += ", \"gap\": ";
      append_ms(out, e.a * 1000);  // a is microseconds; qlog wants ms
      out += ", ";
      append_kv(out, "total_bytes", e.b);
      break;
    case EventType::kDecodeError:
      out += "\"raw\": {";
      append_kv(out, "length", e.a);
      out += "}, ";
      append_kv(out, "trigger", std::string("decoding_failure"));
      break;
  }
  out += '}';
}

}  // namespace

std::string qlog_event_name(const trace::Event& e) {
  using trace::EventType;
  switch (e.type) {
    case EventType::kPacketSent: return "transport:packet_sent";
    case EventType::kPacketReceived: return "transport:packet_received";
    case EventType::kPacketAcked: return "recovery:packets_acked";
    case EventType::kPacketLost: return "recovery:packet_lost";
    case EventType::kPtoFired: return "recovery:loss_timer_updated";
    case EventType::kRttSample:
    case EventType::kCwndSample:
    case EventType::kPacingSample: return "recovery:metrics_updated";
    case EventType::kCcStateChanged:
      return "recovery:congestion_state_updated";
    case EventType::kHandshakeEvent:
      return e.detail == "established"
                 ? "connectivity:connection_state_updated"
                 : "wira:handshake_message";
    case EventType::kInitApplied: return "wira:init_applied";
    case EventType::kCookieEvent: return "wira:cookie_applied";
    case EventType::kFrameComplete: return "wira:frame_complete";
    case EventType::kRequestReceived: return "wira:request_received";
    case EventType::kOriginByte: return "wira:origin_byte";
    case EventType::kFfParsed: return "wira:ff_parsed";
    case EventType::kCornerCase: return "wira:corner_case";
    case EventType::kRequestSent: return "wira:request_sent";
    case EventType::kFirstVideoByte: return "wira:first_video_byte";
    case EventType::kStallObserved: return "wira:stall_observed";
    case EventType::kDecodeError: return "transport:packet_dropped";
  }
  return "wira:unknown";
}

QlogStreamWriter::QlogStreamWriter(std::ostream& os, const QlogTraceInfo& info)
    : os_(os) {
  std::string line;
  line += "{\"qlog_version\": \"0.3\", \"qlog_format\": \"JSON-SEQ\", ";
  append_kv(line, "title", info.title);
  line += ", \"trace\": {\"vantage_point\": {";
  append_kv(line, "name", info.vantage_point_name);
  line += ", ";
  append_kv(line, "type", info.vantage_point_type);
  line += "}, \"common_fields\": {\"time_format\": \"relative\", "
          "\"reference_time\": 0";
  if (!info.group_id.empty()) {
    line += ", ";
    append_kv(line, "group_id", info.group_id);
  }
  line += "}}}\n";
  os_ << line;
}

void QlogStreamWriter::on_event(const trace::Event& e) {
  std::string line;
  line += "{\"time\": ";
  append_ms(line, static_cast<uint64_t>(e.time));
  line += ", ";
  append_kv(line, "name", qlog_event_name(e));
  line += ", \"data\": ";
  append_data(line, e);
  line += "}\n";
  os_ << line;
}

}  // namespace wira::obs
