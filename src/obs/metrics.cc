#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/json.h"

namespace wira::obs {

namespace {

constexpr uint64_t kSubBucketBits = 4;  // log2(LatencyHistogram::kSubBuckets)
static_assert((uint64_t{1} << kSubBucketBits) ==
              LatencyHistogram::kSubBuckets);

/// Formats a double with enough precision for stable round-tripping of the
/// interpolated percentiles (integers print without a fraction).
std::string fmt_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

size_t LatencyHistogram::bucket_index(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // Octave = position of the highest set bit; the kSubBucketBits bits
  // below it select the linear sub-bucket within the octave.
  const int octave = std::bit_width(value) - 1;  // >= kSubBucketBits
  const int shift = octave - static_cast<int>(kSubBucketBits);
  const uint64_t sub = (value >> shift) - kSubBuckets;  // in [0, kSubBuckets)
  return static_cast<size_t>(
      kSubBuckets +
      static_cast<uint64_t>(octave - static_cast<int>(kSubBucketBits)) *
          kSubBuckets +
      sub);
}

uint64_t LatencyHistogram::bucket_lo(size_t index) {
  if (index < kSubBuckets) return index;
  const uint64_t block = (index - kSubBuckets) / kSubBuckets;
  const uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << block;
}

uint64_t LatencyHistogram::bucket_hi(size_t index) {
  if (index < kSubBuckets) return index + 1;
  const uint64_t block = (index - kSubBuckets) / kSubBuckets;
  return bucket_lo(index) + (uint64_t{1} << block);
}

void LatencyHistogram::record_n(uint64_t value, uint64_t n) {
  if (n == 0) return;
  const size_t idx = bucket_index(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += n;
  count_ += n;
  sum_ += value * n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p == 0.0) return static_cast<double>(min());  // matches Samples
  // Rank in [1, count]: the p-th percentile is the value below which
  // p% of the samples fall (nearest-rank with in-bucket interpolation).
  const double target =
      std::max(1.0, p / 100.0 * static_cast<double>(count_));
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double into_bucket =
          target - static_cast<double>(cum - counts_[i]);
      const double frac = into_bucket / static_cast<double>(counts_[i]);
      const double lo = static_cast<double>(bucket_lo(i));
      const double hi = static_cast<double>(bucket_hi(i));
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
  }
  return static_cast<double>(max());
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LatencyHistogram LatencyHistogram::from_state(std::vector<uint64_t> counts,
                                              uint64_t count, uint64_t sum,
                                              uint64_t min, uint64_t max) {
  LatencyHistogram h;
  h.counts_ = std::move(counts);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count == 0 ? UINT64_MAX : min;
  h.max_ = max;
  return h;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::buckets() const {
  std::vector<Bucket> out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Bucket{bucket_lo(i), bucket_hi(i), counts_[i]});
  }
  return out;
}

void MetricsRegistry::inc(std::string_view name, uint64_t n) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), n);
  } else {
    it->second += n;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), LatencyHistogram{}).first;
  }
  return it->second;
}

uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const LatencyHistogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) inc(name, v);
  for (const auto& [name, v] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, v);
    } else {
      it->second += v;  // gauges hold additive quantities by contract
    }
  }
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "" : ",") << '"' << util::json_escape(name) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "" : ",") << '"' << util::json_escape(name)
       << "\":" << fmt_double(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << util::json_escape(name) << "\":{"
       << "\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"mean\":" << fmt_double(h.mean())
       << ",\"p50\":" << fmt_double(h.percentile(50))
       << ",\"p90\":" << fmt_double(h.percentile(90))
       << ",\"p99\":" << fmt_double(h.percentile(99)) << "}";
    first = false;
  }
  os << "}}";
}

}  // namespace wira::obs
