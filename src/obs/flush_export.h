// Live-telemetry state for wira_exporterd (in the spirit of puffer's
// log_reporter): tails the soak/population AggregateSink flush JSONL and
// renders the latest cumulative summary as Prometheus text.
//
// Split from the daemon so every piece is unit-testable without sockets
// or files:
//   - LineTail: incremental line splitting over arbitrary read chunks —
//     a truncated/partial final line (the writer is mid-flush) stays
//     buffered until its newline arrives, so the exporter never parses
//     half a record;
//   - parse_flush_line: one AggregateSink::write_summary_line record
//     ({"sessions":N,"final":b[,extras],"schemes":{...}}) into a struct;
//   - ExporterState: ingest() chunks, keep the latest summary (flush
//     lines are cumulative, so latest wins) plus self-telemetry, and
//     render() the /metrics payload.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wira::obs {

/// Incremental newline splitter for tailed files/pipes.
class LineTail {
 public:
  /// Feeds a read chunk; invokes `on_line` once per *complete* line (no
  /// trailing newline included).  Bytes after the last newline are held
  /// until a later add() completes them.
  void add(std::string_view chunk,
           const std::function<void(std::string_view line)>& on_line);

  /// Bytes buffered waiting for their newline.
  size_t pending_bytes() const { return partial_.size(); }

 private:
  std::string partial_;
};

/// One quantile block of a flush line ({"count":..,"mean":..,"p50":..}).
struct FlushDist {
  bool present = false;
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

struct FlushSchemeSummary {
  uint64_t sessions = 0;
  FlushDist ffct_ms;
  FlushDist fflr_ppm;
};

/// Parsed AggregateSink::write_summary_line record.
struct FlushSummary {
  uint64_t sessions = 0;
  bool final_line = false;
  std::optional<double> rss_mb;  ///< the soak bench's flush-hook extra
  /// Flight-recorder anomaly-dump triggers ("stall", "corner_case", ...)
  /// with cumulative counts; absent from clean runs.  Lexicographic by
  /// trigger name (the writer's order).
  std::vector<std::pair<std::string, uint64_t>> anomaly_dumps;
  /// Chunk-scheduler telemetry from the soak flush hook (the "dispatch"
  /// extra): busy-worker high-watermark and per-worker completed chunk
  /// counts, keyed by worker id rendered as a string.  Absent from
  /// single-process runs.
  std::optional<uint64_t> dispatch_busy;
  std::vector<std::pair<std::string, uint64_t>> dispatch_chunks;
  /// Lexicographic by scheme name (the writer's order).
  std::vector<std::pair<std::string, FlushSchemeSummary>> schemes;
};

bool parse_flush_line(std::string_view line, FlushSummary* out,
                      std::string* error);

/// The exporter's whole mutable state: tail buffer, latest summary,
/// self-telemetry.  Single-threaded, like the daemon's loop.
class ExporterState {
 public:
  /// Feeds bytes read from the flush JSONL; complete lines are parsed,
  /// the newest parsable line becomes the served summary.
  void ingest(std::string_view chunk);

  uint64_t lines_total() const { return lines_total_; }
  uint64_t parse_errors() const { return parse_errors_; }
  size_t pending_bytes() const { return tail_.pending_bytes(); }
  bool has_summary() const { return summary_.has_value(); }
  const FlushSummary& summary() const { return *summary_; }

  void note_scrape() { ++scrapes_; }

  /// Identity of the running exporter, rendered as the conventional
  /// `wira_build_info{version=...,git_sha=...} 1` gauge.  The daemon sets
  /// this once at startup; tests inject fixed strings for golden renders.
  void set_build_info(std::string version, std::string git_sha) {
    version_ = std::move(version);
    git_sha_ = std::move(git_sha);
  }
  /// Process uptime exported as `wira_process_uptime_seconds`.  The
  /// daemon refreshes this from its monotonic clock before each render;
  /// unset (negative) suppresses the family so pure-parse tests stay
  /// clock-free.
  void set_uptime_seconds(double uptime) { uptime_seconds_ = uptime; }

  /// The /metrics payload: soak counters/summaries from the latest flush
  /// line plus the exporter's own counters.  Valid exposition text even
  /// before the first line arrives.
  std::string render() const;

 private:
  LineTail tail_;
  std::optional<FlushSummary> summary_;
  uint64_t lines_total_ = 0;
  uint64_t parse_errors_ = 0;
  uint64_t scrapes_ = 0;
  std::string version_;
  std::string git_sha_;
  double uptime_seconds_ = -1;
};

}  // namespace wira::obs
