// Process-memory observability: resident-set sampling for the soak path.
//
// The fleet-scale soak mode's whole claim is "bounded memory at millions
// of sessions"; these helpers make that a *measured* property.  Readings
// come from /proc/self/status (VmRSS / VmHWM) so they reflect what the
// kernel actually charges the process — heap-side accounting alone would
// miss allocator retention and arena blocks.
//
// On platforms without procfs both calls return 0; callers must treat 0
// as "unavailable" (the soak bench then skips its plateau gate rather
// than reporting a fake flat line).
#pragma once

#include <cstdint>

namespace wira::obs {

/// Current resident set size in bytes (VmRSS), 0 when unavailable.
uint64_t current_rss_bytes();

/// Peak resident set size in bytes (VmHWM, the high-water mark), 0 when
/// unavailable.
uint64_t peak_rss_bytes();

}  // namespace wira::obs
