// Process-memory observability: resident-set sampling for the soak path.
//
// The fleet-scale soak mode's whole claim is "bounded memory at millions
// of sessions"; these helpers make that a *measured* property.  Readings
// come from /proc/self/status (VmRSS / VmHWM) so they reflect what the
// kernel actually charges the process — heap-side accounting alone would
// miss allocator retention and arena blocks.
//
// Unavailable readings (non-Linux, unreadable procfs, a status file with
// no Vm fields) are a *monostate* — std::nullopt — never 0: a fake zero
// sample would flow into ratio gates like the soak's rss_plateau (max
// late-half / max early-half) and either divide by zero or report a
// fabricated flat line.  Callers skip, they don't default.
//
// RssReader takes an injectable status path so tests can exercise the
// parse and the fallback without depending on the host's procfs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace wira::obs {

class RssReader {
 public:
  /// `status_path` is /proc/self/status unless a test injects a fixture.
  explicit RssReader(std::string status_path = "/proc/self/status")
      : status_path_(std::move(status_path)) {}

  /// Current resident set size in bytes (VmRSS); nullopt when the file
  /// cannot be read or the field is absent.
  std::optional<uint64_t> current_rss_bytes() const;

  /// Peak resident set size in bytes (VmHWM, the high-water mark);
  /// nullopt when unavailable.
  std::optional<uint64_t> peak_rss_bytes() const;

 private:
  std::string status_path_;
};

/// Convenience readers over the live process (the common call sites).
std::optional<uint64_t> current_rss_bytes();
std::optional<uint64_t> peak_rss_bytes();

}  // namespace wira::obs
