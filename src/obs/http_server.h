// Minimal epoll HTTP server for the telemetry exporter (/metrics and
// /healthz) — deliberately the repo's first real-socket component, a
// stepping stone toward the ROADMAP's wira_proxyd UDP front end.
//
// Scope is intentionally tiny: GET-only, Connection: close, loopback
// bind, one level-triggered epoll loop pumped by the caller (poll()), no
// threads.  Scrape traffic is a handful of requests per second with small
// responses, so there is nothing to optimize — the value is that a real
// TCP listener now lives behind the same build/test/sanitizer gates as
// the simulator, and tests/test_prom.cc drives it over an actual socket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace wira::obs {

class MiniHttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::string body;
  };
  /// Handles one GET by path ("/metrics"); runs inside poll() on the
  /// caller's thread.  Unset handler -> every path is 404.
  using Handler = std::function<Response(const std::string& path)>;

  MiniHttpServer() = default;
  ~MiniHttpServer();
  MiniHttpServer(const MiniHttpServer&) = delete;
  MiniHttpServer& operator=(const MiniHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  /// port()) and starts listening.  False + *error on failure.
  bool start(uint16_t port, std::string* error);
  /// The bound port; 0 when not started.
  uint16_t port() const { return port_; }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Pumps the event loop once: accepts, reads, replies, closes.  Blocks
  /// up to `timeout_ms` waiting for activity (0 = drain and return).
  /// Call in a loop; no work happens outside poll().
  void poll(int timeout_ms);

  void stop();

  uint64_t requests_served() const { return requests_served_; }

 private:
  struct Conn {
    std::string in;      ///< request bytes until the blank line
    std::string out;     ///< serialized response
    size_t out_off = 0;
    bool responding = false;
  };

  void accept_ready();
  void conn_ready(int fd, uint32_t events);
  void make_response(int fd, Conn& conn);
  /// Switches the fd's epoll interest to EPOLLOUT so a pending response
  /// keeps draining once the peer's receive window reopens.
  void arm_write(int fd);
  void close_conn(int fd);

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  Handler handler_;
  std::map<int, Conn> conns_;
  uint64_t requests_served_ = 0;
};

}  // namespace wira::obs
