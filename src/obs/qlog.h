// Standard-qlog serialization of the internal tracer event stream
// (draft-ietf-quic-qlog main schema, JSON-SEQ flavour written as plain
// JSONL — one JSON object per line, no RS framing — so both qlog viewers
// and line-oriented tools can consume the file directly).
//
// File layout:
//   line 1:  the qlog "header" record (qlog_version, title, vantage_point)
//   line 2+: one event record per tracer event:
//              {"time": <ms rel.>, "name": "<category:event>", "data": {...}}
//
// Transport/recovery events map onto the names defined by
// draft-ietf-quic-qlog-quic-events; events specific to this reproduction
// (FF_Size parsing, Hx_QoS cookies, corner cases) live under a "wira:"
// namespace.  DESIGN.md §7 carries the full mapping table; the schema
// subset is enforced by tests/test_qlog.cc.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/tracer.h"

namespace wira::obs {

/// Static metadata for one qlog trace (the header line).
struct QlogTraceInfo {
  std::string title;                          ///< e.g. "session 12 / wira"
  std::string group_id;                       ///< correlates related traces
  std::string vantage_point_name = "wira-server";
  std::string vantage_point_type = "server";  ///< "client"/"server"/"network"
};

/// Standard qlog event name for an internal tracer event, e.g.
/// "transport:packet_sent" or "wira:ff_parsed".  Depends on the detail for
/// kHandshakeEvent ("established" is a connection_state_updated).
std::string qlog_event_name(const trace::Event& e);

/// Streams tracer events as standard qlog.  Writes the header line on
/// construction; each on_event() appends exactly one event line.  Attach
/// with tracer.stream_to(&writer); the writer must outlive the streaming.
class QlogStreamWriter : public trace::EventSink {
 public:
  QlogStreamWriter(std::ostream& os, const QlogTraceInfo& info);

  void on_event(const trace::Event& e) override;

 private:
  std::ostream& os_;
};

}  // namespace wira::obs
