// Runs one emulated live-streaming session end-to-end: client + Wira proxy
// server over an emulated path, and collects the metrics the paper reports
// (FFCT, first-frame loss rate, follow-up frame completion/loss).
#pragma once

#include <optional>

#include "app/player_client.h"
#include "app/wira_server.h"
#include "core/init_config.h"
#include "media/stream_source.h"
#include "obs/flight_recorder.h"
#include "obs/phase_timeline.h"
#include "sim/path.h"
#include "trace/tracer.h"

namespace wira::exp {

struct SessionConfig {
  sim::PathConfig path;
  core::Scheme scheme = core::Scheme::kWira;
  cc::CcAlgo cc_algo = cc::CcAlgo::kBbrV1;
  uint64_t seed = 1;

  media::StreamProfile stream;
  uint64_t corpus_seed = 42;
  /// The client starts at this simulated time: controls both the join
  /// position within the stream and cookie-age arithmetic.
  TimeNs start_time = 0;

  uint32_t theta_vf = 1;
  /// Client has the server config cached -> 0-RTT handshake.
  bool zero_rtt = true;
  /// Pre-seeded transport cookie from the "previous session" (sealed with
  /// the server's key by the runner); nullopt = no cookie.
  std::optional<core::HxQosRecord> cookie;
  /// Whether the client even declares HQST support.
  bool client_supports_cookie = true;
  /// Group-average QoS for Scheme::kUserGroup.
  std::optional<core::HxQosRecord> ug_qos;

  core::ExperiencedDefaults defaults;
  TimeNs staleness_threshold = core::kDefaultStaleness;
  TimeNs sync_period = core::kDefaultSyncPeriod;
  bool cookie_sync_enabled = true;
  bool careful_resume = false;  ///< see app::ServerConfig::careful_resume
  TimeNs origin_latency = milliseconds(5);
  uint32_t track_frames = 4;
  TimeNs max_session_time = seconds(10);

  /// Decompose FFCT into phase spans (SessionResult::phases).  Off by
  /// default: it attaches a tracer to the server connection, which costs
  /// an event record per packet.
  bool collect_phases = false;
  /// External tracer to attach to the server (e.g. a streaming qlog
  /// dumper); not owned.  When collect_phases is also set, the tracer
  /// must keep its event buffer (Tracer::stream_to keep_buffer=true) so
  /// phase boundaries can be extracted after the run.
  trace::Tracer* tracer = nullptr;
  /// External tracer for the *client* connection (the client-vantage half
  /// of a paired qlog sample; see obs/trace_join.h); not owned.  Phase
  /// extraction never reads it, so it needs no buffer.
  trace::Tracer* client_tracer = nullptr;
  /// Always-on flight recorder (obs/flight_recorder.h); not owned, must
  /// outlive the run.  When set, both vantages' tracers get the recorder
  /// attached as a tap (reset() first), coexisting with any qlog sinks
  /// above; the caller inspects it afterwards for anomaly triggers.  The
  /// recorder is bounded and POD-backed, so this costs no steady-state
  /// heap allocations.
  obs::FlightRecorder* recorder = nullptr;
};

struct FrameStat {
  TimeNs completion = kNoTime;  ///< from request send; kNoTime = incomplete
  double loss_rate = 0;         ///< link-level loss over the frame's window
};

namespace detail {
/// Link counter snapshot used for per-frame loss windows (scratch state
/// kept in the workspace so it can be recycled across sessions).
struct LinkWindow {
  uint64_t attempts = 0;
  uint64_t drops = 0;
};
}  // namespace detail

struct SessionResult;

/// Reusable per-worker session machinery (DESIGN.md §6 memory model).
///
/// Building a session from scratch pays for an event loop (callable
/// slots, heap storage, buffer pool, arena blocks) every time; at soak
/// scale that dominates the allocation profile.  A SessionWorkspace owns
/// that machinery once per worker: run_session(config, workspace) resets
/// the loop (capacities retained, see sim::EventLoop::reset) and reuses
/// it, so steady-state sessions allocate only what is genuinely
/// session-shaped (media corpus draws, connection state, the result
/// itself).  Results are bit-identical to workspace-free runs — the reset
/// contract is "indistinguishable from a fresh loop".
///
/// Not thread-safe: one workspace per worker thread/process, like the
/// loop it owns.
class SessionWorkspace {
 public:
  SessionWorkspace() = default;
  SessionWorkspace(const SessionWorkspace&) = delete;
  SessionWorkspace& operator=(const SessionWorkspace&) = delete;

  /// Sessions hosted so far (diagnostics; soak progress reports).
  uint64_t sessions_run() const { return sessions_run_; }
  /// The recycled event loop (exposed for capacity-reuse assertions).
  sim::EventLoop& loop() { return loop_; }
  /// Per-worker flight recorder: slots are allocated once here and
  /// recycled per session (SessionConfig::recorder points at this in the
  /// population sweep).
  obs::FlightRecorder& flight_recorder() { return flight_recorder_; }

  /// Anomaly dump *files* this workspace has materialized — the
  /// population sweep caps files per worker (trigger counters are never
  /// capped).  Public scratch, like the workspace itself.
  uint64_t anomaly_dumps_written = 0;

 private:
  friend SessionResult run_session_with_workspace(const SessionConfig&,
                                                  SessionWorkspace*);

  sim::EventLoop loop_;
  std::vector<detail::LinkWindow> frame_snapshots_;  ///< scratch
  obs::FlightRecorder flight_recorder_;
  uint64_t sessions_run_ = 0;
};

struct SessionResult {
  bool first_frame_completed = false;
  TimeNs ffct = kNoTime;
  double fflr = 0;  ///< link-level loss rate over the first-frame window
  std::vector<FrameStat> frames;  ///< video frames 1..track_frames
  bool zero_rtt = false;
  uint64_t ff_size = 0;            ///< parser-reported FF_Size (0 if n/a)
  core::InitDecision init;
  quic::ConnStats server_stats;    ///< end-of-session snapshot
  double retransmission_ratio = 0; ///< retransmitted/sent stream bytes
  uint64_t cookies_synced = 0;
  uint64_t client_cookies_received = 0;

  // ---- observability (PR 2) ----
  /// FFCT phase partition (empty unless SessionConfig::collect_phases and
  /// the first frame completed).  Spans sum to exactly `ffct`.
  std::vector<obs::PhaseSpan> phases;
  /// Corner case 1 fired: the send controller was initialized at least
  /// once before FF_Size was parsed (init_cwnd_exp substituted).
  bool cwnd_fallback = false;
  /// The client attempted 0-RTT but the handshake fell back to 1-RTT.
  bool zero_rtt_rejected = false;

  // ---- allocation accounting (PR 4) ----
  /// Cumulative bytes the session's event loop handed out of its bump
  /// arena (perf diagnostics only; never exported to session JSONL).
  uint64_t arena_bytes = 0;
};

SessionResult run_session(const SessionConfig& config);

/// Workspace-recycling variant: byte-identical results, but the event
/// loop, buffer pool, arena blocks and scratch vectors come from `ws`
/// (reset + reused) instead of being rebuilt, cutting steady-state heap
/// allocations per session (the soak path; see DESIGN.md §6).
SessionResult run_session(const SessionConfig& config, SessionWorkspace& ws);

/// Implementation hook shared by both overloads: ws may be nullptr.
SessionResult run_session_with_workspace(const SessionConfig& config,
                                         SessionWorkspace* ws);

/// Convenience: session on the paper's Fig. 2 testbed path with explicit
/// init parameters (bypassing the schemes) — used by the init sweeps.
struct ManualInitConfig {
  sim::PathConfig path = sim::testbed_path();
  uint64_t init_cwnd_bytes = 0;
  Bandwidth init_pacing = 0;
  media::StreamProfile stream;
  uint64_t corpus_seed = 42;
  uint64_t seed = 1;
  TimeNs start_time = 0;
  bool collect_phases = false;  ///< see SessionConfig::collect_phases
};
SessionResult run_manual_init_session(const ManualInitConfig& config);

}  // namespace wira::exp
