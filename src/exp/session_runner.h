// Runs one emulated live-streaming session end-to-end: client + Wira proxy
// server over an emulated path, and collects the metrics the paper reports
// (FFCT, first-frame loss rate, follow-up frame completion/loss).
#pragma once

#include <optional>

#include "app/player_client.h"
#include "app/wira_server.h"
#include "core/init_config.h"
#include "media/stream_source.h"
#include "sim/path.h"

namespace wira::exp {

struct SessionConfig {
  sim::PathConfig path;
  core::Scheme scheme = core::Scheme::kWira;
  cc::CcAlgo cc_algo = cc::CcAlgo::kBbrV1;
  uint64_t seed = 1;

  media::StreamProfile stream;
  uint64_t corpus_seed = 42;
  /// The client starts at this simulated time: controls both the join
  /// position within the stream and cookie-age arithmetic.
  TimeNs start_time = 0;

  uint32_t theta_vf = 1;
  /// Client has the server config cached -> 0-RTT handshake.
  bool zero_rtt = true;
  /// Pre-seeded transport cookie from the "previous session" (sealed with
  /// the server's key by the runner); nullopt = no cookie.
  std::optional<core::HxQosRecord> cookie;
  /// Whether the client even declares HQST support.
  bool client_supports_cookie = true;
  /// Group-average QoS for Scheme::kUserGroup.
  std::optional<core::HxQosRecord> ug_qos;

  core::ExperiencedDefaults defaults;
  TimeNs staleness_threshold = core::kDefaultStaleness;
  TimeNs sync_period = core::kDefaultSyncPeriod;
  bool cookie_sync_enabled = true;
  bool careful_resume = false;  ///< see app::ServerConfig::careful_resume
  TimeNs origin_latency = milliseconds(5);
  uint32_t track_frames = 4;
  TimeNs max_session_time = seconds(10);
};

struct FrameStat {
  TimeNs completion = kNoTime;  ///< from request send; kNoTime = incomplete
  double loss_rate = 0;         ///< link-level loss over the frame's window
};

struct SessionResult {
  bool first_frame_completed = false;
  TimeNs ffct = kNoTime;
  double fflr = 0;  ///< link-level loss rate over the first-frame window
  std::vector<FrameStat> frames;  ///< video frames 1..track_frames
  bool zero_rtt = false;
  uint64_t ff_size = 0;            ///< parser-reported FF_Size (0 if n/a)
  core::InitDecision init;
  quic::ConnStats server_stats;    ///< end-of-session snapshot
  double retransmission_ratio = 0; ///< retransmitted/sent stream bytes
  uint64_t cookies_synced = 0;
  uint64_t client_cookies_received = 0;
};

SessionResult run_session(const SessionConfig& config);

/// Convenience: session on the paper's Fig. 2 testbed path with explicit
/// init parameters (bypassing the schemes) — used by the init sweeps.
struct ManualInitConfig {
  sim::PathConfig path = sim::testbed_path();
  uint64_t init_cwnd_bytes = 0;
  Bandwidth init_pacing = 0;
  media::StreamProfile stream;
  uint64_t corpus_seed = 42;
  uint64_t seed = 1;
  TimeNs start_time = 0;
};
SessionResult run_manual_init_session(const ManualInitConfig& config);

}  // namespace wira::exp
