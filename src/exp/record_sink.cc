#include "exp/record_sink.h"

#include <cinttypes>
#include <cstdio>

#include "exp/record_codec.h"
#include "util/json.h"

namespace wira::exp {

// ---- CollectSink --------------------------------------------------------

void CollectSink::on_record(size_t index, SessionRecord&& rec) {
  // Index-order contract: the runner hands records over strictly in
  // order, so collection is a plain append.
  (void)index;
  records_.push_back(std::move(rec));
}

// ---- AggregateSink ------------------------------------------------------

void AggregateSink::on_record(size_t index, SessionRecord&& rec) {
  (void)index;
  record_session_metrics(registry_, rec, options_.include_phases);
  ++sessions_seen_;
  if (options_.flush_every > 0 && options_.flush_out != nullptr &&
      sessions_seen_ % options_.flush_every == 0) {
    flush_line(/*final_line=*/false);
  }
}

void AggregateSink::on_complete(size_t sessions) {
  (void)sessions;
  if (options_.flush_out != nullptr) flush_line(/*final_line=*/true);
}

void AggregateSink::merge(const AggregateSink& other) {
  registry_.merge(other.registry_);
  sessions_seen_ += other.sessions_seen_;
}

namespace {

void append_fixed(std::string& out, double v, int decimals = 3) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// {"count":n,"mean":m,"p50":...,"p90":...,"p99":...} with an optional
/// unit scale (us -> ms uses 1e-3).
void append_hist_summary(std::string& out, const obs::LatencyHistogram& h,
                         double scale) {
  out += "{\"count\":";
  append_u64(out, h.count());
  out += ",\"mean\":";
  append_fixed(out, h.mean() * scale);
  out += ",\"p50\":";
  append_fixed(out, h.percentile(50) * scale);
  out += ",\"p90\":";
  append_fixed(out, h.percentile(90) * scale);
  out += ",\"p99\":";
  append_fixed(out, h.percentile(99) * scale);
  out += "}";
}

}  // namespace

void AggregateSink::write_summary_line(std::ostream& os,
                                       bool final_line) const {
  std::string line = "{\"sessions\":";
  append_u64(line, sessions_seen_);
  line += ",\"final\":";
  line += final_line ? "true" : "false";
  if (flush_hook_ != nullptr) {
    flush_hook_(sessions_seen_, &line, flush_hook_arg_);
  }
  // Flight-recorder anomaly triggers, keyed by trigger kind (only when
  // any fired — the common clean flush line stays unchanged).  The
  // `anomaly.dumps.` prefix scan mirrors the scheme discovery below.
  {
    bool any = false;
    for (const auto& [name, count] : registry_.counters()) {
      constexpr std::string_view kPrefix = "anomaly.dumps.";
      if (name.rfind(kPrefix, 0) != 0 || count == 0) continue;
      line += any ? "," : ",\"anomaly_dumps\":{";
      any = true;
      line += '"';
      util::append_json_escaped(line, name.substr(kPrefix.size()));
      line += "\":";
      append_u64(line, count);
    }
    if (any) line += "}";
  }
  line += ",\"schemes\":{";
  // Scheme discovery via the per-scheme session counters: lexicographic
  // map order keeps the line deterministic at any worker count.
  bool first = true;
  for (const auto& [name, count] : registry_.counters()) {
    constexpr std::string_view kPrefix = "sessions.";
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string scheme = name.substr(kPrefix.size());
    if (!first) line += ',';
    first = false;
    line += '"';
    util::append_json_escaped(line, scheme);
    line += "\":{\"sessions\":";
    append_u64(line, count);
    if (const obs::LatencyHistogram* ffct =
            registry_.find_histogram("ffct_us." + scheme)) {
      line += ",\"ffct_ms\":";
      append_hist_summary(line, *ffct, 1e-3);
    }
    if (const obs::LatencyHistogram* fflr =
            registry_.find_histogram("fflr_ppm." + scheme)) {
      line += ",\"fflr_ppm\":";
      append_hist_summary(line, *fflr, 1.0);
    }
    line += "}";
  }
  line += "}}\n";
  os << line;
}

void AggregateSink::flush_line(bool final_line) {
  write_summary_line(*options_.flush_out, final_line);
  options_.flush_out->flush();
  ++flushes_written_;
}

// ---- CodecStreamSink ----------------------------------------------------

CodecStreamSink::CodecStreamSink(std::ostream& os) : os_(os) {
  frame_.clear();
  append_stream_header(frame_);
  write_buf();
}

void CodecStreamSink::on_record(size_t index, SessionRecord&& rec) {
  payload_.clear();
  CodecWriter w(payload_);
  w.u64(index);
  encode_session_record(rec, w);
  frame_.clear();
  append_frame(FrameType::kSessionRecord, payload_, frame_);
  write_buf();
}

void CodecStreamSink::on_complete(size_t sessions) {
  (void)sessions;
  frame_.clear();
  append_frame(FrameType::kEnd, {}, frame_);
  write_buf();
  os_.flush();
}

void CodecStreamSink::write_buf() {
  os_.write(reinterpret_cast<const char*>(frame_.data()),
            static_cast<std::streamsize>(frame_.size()));
  bytes_written_ += frame_.size();
}

}  // namespace wira::exp
