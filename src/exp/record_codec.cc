#include "exp/record_codec.h"

#include <bit>
#include <cstring>

#include "obs/metrics.h"
#include "obs/phase_timeline.h"

namespace wira::exp {

namespace {

/// Phase names are static literals (obs::kPhaseNames); spans travel as an
/// index so the decoded PhaseSpan::name pointer is valid forever.  0xFE
/// encodes the empty default name.
constexpr uint8_t kEmptyPhaseName = 0xFE;

bool phase_name_index(const char* name, uint8_t* out) {
  if (name == nullptr || *name == '\0') {
    *out = kEmptyPhaseName;
    return true;
  }
  for (size_t i = 0; i < obs::kNumPhases; ++i) {
    if (std::strcmp(name, obs::kPhaseNames[i]) == 0) {
      *out = static_cast<uint8_t>(i);
      return true;
    }
  }
  return false;
}

const char* phase_name_from_index(uint8_t idx) {
  if (idx == kEmptyPhaseName) return "";
  if (idx < obs::kNumPhases) return obs::kPhaseNames[idx];
  return nullptr;
}

}  // namespace

uint64_t fnv1a64(std::span<const uint8_t> data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

void CodecWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void CodecWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void CodecWriter::f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

void CodecWriter::bytes(std::span<const uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void CodecWriter::str(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

bool CodecReader::take(size_t n, const uint8_t** p) {
  if (failed_ || data_.size() - off_ < n) {
    failed_ = true;
    return false;
  }
  *p = data_.data() + off_;
  off_ += n;
  return true;
}

bool CodecReader::u8(uint8_t* v) {
  const uint8_t* p = nullptr;
  if (!take(1, &p)) return false;
  *v = *p;
  return true;
}

bool CodecReader::u32(uint32_t* v) {
  const uint8_t* p = nullptr;
  if (!take(4, &p)) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(p[i]) << (8 * i);
  *v = r;
  return true;
}

bool CodecReader::u64(uint64_t* v) {
  const uint8_t* p = nullptr;
  if (!take(8, &p)) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(p[i]) << (8 * i);
  *v = r;
  return true;
}

bool CodecReader::i64(int64_t* v) {
  uint64_t u = 0;
  if (!u64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool CodecReader::f64(double* v) {
  uint64_t u = 0;
  if (!u64(&u)) return false;
  *v = std::bit_cast<double>(u);
  return true;
}

bool CodecReader::boolean(bool* v) {
  uint8_t b = 0;
  if (!u8(&b)) return false;
  if (b > 1) {
    failed_ = true;
    return false;
  }
  *v = b != 0;
  return true;
}

bool CodecReader::str(std::string* s) {
  uint32_t n = 0;
  if (!u32(&n)) return false;
  const uint8_t* p = nullptr;
  if (!take(n, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

// ---- value codecs -------------------------------------------------------

void encode_hxqos_record(const core::HxQosRecord& r, CodecWriter& w) {
  w.i64(r.min_rtt);
  w.u64(r.max_bw);
  w.i64(r.server_timestamp);
  w.u64(r.od_key);
  w.f64(r.loss_rate);
}

bool decode_hxqos_record(CodecReader& r, core::HxQosRecord* out) {
  return r.i64(&out->min_rtt) && r.u64(&out->max_bw) &&
         r.i64(&out->server_timestamp) && r.u64(&out->od_key) &&
         r.f64(&out->loss_rate);
}

void encode_session_result(const SessionResult& res, CodecWriter& w) {
  w.boolean(res.first_frame_completed);
  w.i64(res.ffct);
  w.f64(res.fflr);
  w.u32(static_cast<uint32_t>(res.frames.size()));
  for (const FrameStat& f : res.frames) {
    w.i64(f.completion);
    w.f64(f.loss_rate);
  }
  w.boolean(res.zero_rtt);
  w.u64(res.ff_size);
  w.u64(res.init.init_cwnd);
  w.u64(res.init.init_pacing);
  w.boolean(res.init.used_ff_size);
  w.boolean(res.init.used_hx_qos);
  w.boolean(res.init.hx_stale);
  w.boolean(res.init.ff_pending);
  w.u64(res.server_stats.packets_sent);
  w.u64(res.server_stats.data_packets_sent);
  w.u64(res.server_stats.packets_received);
  w.u64(res.server_stats.packets_acked);
  w.u64(res.server_stats.packets_lost);
  w.u64(res.server_stats.ptos_fired);
  w.u64(res.server_stats.bytes_sent);
  w.u64(res.server_stats.stream_bytes_sent);
  w.u64(res.server_stats.stream_bytes_retransmitted);
  w.i64(res.server_stats.handshake_rtt);
  w.f64(res.retransmission_ratio);
  w.u64(res.cookies_synced);
  w.u64(res.client_cookies_received);
  w.u32(static_cast<uint32_t>(res.phases.size()));
  for (const obs::PhaseSpan& span : res.phases) {
    uint8_t idx = 0;
    // Unknown names cannot round-trip to a stable pointer; encode as
    // empty rather than shipping a dangling char*.
    if (!phase_name_index(span.name, &idx)) idx = kEmptyPhaseName;
    w.u8(idx);
    w.i64(span.begin);
    w.i64(span.end);
  }
  w.boolean(res.cwnd_fallback);
  w.boolean(res.zero_rtt_rejected);
  w.u64(res.arena_bytes);
  w.u64(res.server_stats.packets_undecodable);  // appended in v2
}

bool decode_session_result(CodecReader& r, SessionResult* out) {
  if (!r.boolean(&out->first_frame_completed) || !r.i64(&out->ffct) ||
      !r.f64(&out->fflr)) {
    return false;
  }
  uint32_t n_frames = 0;
  if (!r.u32(&n_frames)) return false;
  out->frames.clear();
  for (uint32_t i = 0; i < n_frames; ++i) {
    FrameStat f;
    if (!r.i64(&f.completion) || !r.f64(&f.loss_rate)) return false;
    out->frames.push_back(f);
  }
  if (!r.boolean(&out->zero_rtt) || !r.u64(&out->ff_size) ||
      !r.u64(&out->init.init_cwnd) || !r.u64(&out->init.init_pacing) ||
      !r.boolean(&out->init.used_ff_size) ||
      !r.boolean(&out->init.used_hx_qos) ||
      !r.boolean(&out->init.hx_stale) ||
      !r.boolean(&out->init.ff_pending) ||
      !r.u64(&out->server_stats.packets_sent) ||
      !r.u64(&out->server_stats.data_packets_sent) ||
      !r.u64(&out->server_stats.packets_received) ||
      !r.u64(&out->server_stats.packets_acked) ||
      !r.u64(&out->server_stats.packets_lost) ||
      !r.u64(&out->server_stats.ptos_fired) ||
      !r.u64(&out->server_stats.bytes_sent) ||
      !r.u64(&out->server_stats.stream_bytes_sent) ||
      !r.u64(&out->server_stats.stream_bytes_retransmitted) ||
      !r.i64(&out->server_stats.handshake_rtt) ||
      !r.f64(&out->retransmission_ratio) || !r.u64(&out->cookies_synced) ||
      !r.u64(&out->client_cookies_received)) {
    return false;
  }
  uint32_t n_phases = 0;
  if (!r.u32(&n_phases)) return false;
  out->phases.clear();
  for (uint32_t i = 0; i < n_phases; ++i) {
    uint8_t idx = 0;
    obs::PhaseSpan span;
    if (!r.u8(&idx) || !r.i64(&span.begin) || !r.i64(&span.end)) {
      return false;
    }
    span.name = phase_name_from_index(idx);
    if (span.name == nullptr) return false;
    out->phases.push_back(span);
  }
  return r.boolean(&out->cwnd_fallback) &&
         r.boolean(&out->zero_rtt_rejected) && r.u64(&out->arena_bytes) &&
         r.u64(&out->server_stats.packets_undecodable);
}

void encode_session_record(const SessionRecord& rec, CodecWriter& w) {
  w.i64(rec.conditions.min_rtt);
  w.u64(rec.conditions.max_bw);
  w.f64(rec.conditions.loss_rate);
  w.u64(rec.conditions.buffer_bytes);
  w.i64(rec.cookie_age);
  w.boolean(rec.zero_rtt);
  w.boolean(rec.had_cookie);
  w.u64(rec.ff_size);
  w.u64(rec.trace_open_failures);
  w.u32(static_cast<uint32_t>(rec.results.size()));
  for (const auto& [scheme, res] : rec.results) {
    w.u32(static_cast<uint32_t>(scheme));
    encode_session_result(res, w);
  }
  // v2: flight-recorder anomaly-trigger counts (appended after the
  // results so every pre-existing field offset is unchanged).
  w.u64(rec.anomaly_stall_dumps);
  w.u64(rec.anomaly_corner_dumps);
  w.u64(rec.anomaly_decode_dumps);
  w.u64(rec.anomaly_ffct_dumps);
}

bool decode_session_record(CodecReader& r, SessionRecord* out) {
  if (!r.i64(&out->conditions.min_rtt) || !r.u64(&out->conditions.max_bw) ||
      !r.f64(&out->conditions.loss_rate) ||
      !r.u64(&out->conditions.buffer_bytes) || !r.i64(&out->cookie_age) ||
      !r.boolean(&out->zero_rtt) || !r.boolean(&out->had_cookie) ||
      !r.u64(&out->ff_size) || !r.u64(&out->trace_open_failures)) {
    return false;
  }
  uint32_t n_results = 0;
  if (!r.u32(&n_results)) return false;
  out->results.clear();
  for (uint32_t i = 0; i < n_results; ++i) {
    uint32_t scheme = 0;
    if (!r.u32(&scheme)) return false;
    if (scheme > static_cast<uint32_t>(core::Scheme::kWiraPlus)) {
      return false;
    }
    SessionResult res;
    if (!decode_session_result(r, &res)) return false;
    const auto [it, inserted] =
        out->results.emplace(static_cast<core::Scheme>(scheme),
                             std::move(res));
    if (!inserted) return false;  // duplicate scheme = corrupt payload
  }
  return r.u64(&out->anomaly_stall_dumps) &&
         r.u64(&out->anomaly_corner_dumps) &&
         r.u64(&out->anomaly_decode_dumps) &&
         r.u64(&out->anomaly_ffct_dumps);
}

void encode_metrics_registry(const obs::MetricsRegistry& m, CodecWriter& w) {
  w.u32(static_cast<uint32_t>(m.counters().size()));
  for (const auto& [name, v] : m.counters()) {
    w.str(name);
    w.u64(v);
  }
  w.u32(static_cast<uint32_t>(m.gauges().size()));
  for (const auto& [name, v] : m.gauges()) {
    w.str(name);
    w.f64(v);
  }
  w.u32(static_cast<uint32_t>(m.histograms().size()));
  for (const auto& [name, h] : m.histograms()) {
    w.str(name);
    w.u64(h.count());
    w.u64(h.sum());
    w.u64(h.min());
    w.u64(h.max());
    const auto& counts = h.bucket_counts();
    w.u32(static_cast<uint32_t>(counts.size()));
    for (uint64_t c : counts) w.u64(c);
  }
}

bool decode_metrics_registry(CodecReader& r, obs::MetricsRegistry* out) {
  uint32_t n = 0;
  if (!r.u32(&n)) return false;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t v = 0;
    if (!r.str(&name) || !r.u64(&v)) return false;
    out->inc(name, v);
  }
  if (!r.u32(&n)) return false;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    double v = 0;
    if (!r.str(&name) || !r.f64(&v)) return false;
    out->set_gauge(name, v);
  }
  if (!r.u32(&n)) return false;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t count = 0, sum = 0, min = 0, max = 0;
    uint32_t n_buckets = 0;
    if (!r.str(&name) || !r.u64(&count) || !r.u64(&sum) || !r.u64(&min) ||
        !r.u64(&max) || !r.u32(&n_buckets)) {
      return false;
    }
    std::vector<uint64_t> counts;
    counts.reserve(std::min<uint32_t>(n_buckets, 1024));
    uint64_t total = 0;
    for (uint32_t b = 0; b < n_buckets; ++b) {
      uint64_t c = 0;
      if (!r.u64(&c)) return false;
      total += c;
      counts.push_back(c);
    }
    if (total != count) return false;
    out->histogram(name) =
        obs::LatencyHistogram::from_state(std::move(counts), count, sum,
                                          min, max);
  }
  return true;
}

void encode_population_config(const PopulationConfig& c, CodecWriter& w) {
  w.u64(c.seed);
  w.u64(c.sessions);
  w.u64(c.num_groups);
  w.f64(c.p_zero_rtt);
  w.f64(c.p_cookie);
  w.u32(static_cast<uint32_t>(c.schemes.size()));
  for (core::Scheme s : c.schemes) w.u32(static_cast<uint32_t>(s));
  w.u64(c.defaults.init_cwnd_exp);
  w.i64(c.defaults.init_rtt_exp);
  w.i64(c.staleness_threshold);
  w.u32(c.theta_vf);
  w.u8(static_cast<uint8_t>(c.cc_algo));
  w.i64(c.sync_period);
  w.boolean(c.careful_resume);
  w.u8(static_cast<uint8_t>(c.container));
  w.boolean(c.collect_metrics);
  w.u64(c.trace_sample);
  w.str(c.trace_dir);
  w.boolean(c.flight_recorder);
  w.str(c.anomaly_dir);
  w.i64(c.anomaly_ffct);
  w.u64(c.anomaly_max_dumps);
  w.u64(c.fail_at_index);
  w.u64(c.kill_at_index);
  w.u64(c.crash_after_index);
  w.i64(c.crash_after_signal);
  w.u64(c.chunk);
  w.u64(c.skew_delay_us);
  w.u64(c.straggler_worker);
  w.u64(c.straggler_delay_us);
}

bool decode_population_config(CodecReader& r, PopulationConfig* out) {
  if (!r.u64(&out->seed) || !r.u64(&out->sessions) ||
      !r.u64(&out->num_groups) || !r.f64(&out->p_zero_rtt) ||
      !r.f64(&out->p_cookie)) {
    return false;
  }
  uint32_t n_schemes = 0;
  if (!r.u32(&n_schemes)) return false;
  out->schemes.clear();
  for (uint32_t i = 0; i < n_schemes; ++i) {
    uint32_t s = 0;
    if (!r.u32(&s)) return false;
    if (s > static_cast<uint32_t>(core::Scheme::kWiraPlus)) return false;
    out->schemes.push_back(static_cast<core::Scheme>(s));
  }
  uint8_t cc = 0, container = 0;
  int64_t rtt = 0, staleness = 0, sync = 0, ffct = 0, crash_sig = 0;
  uint64_t cwnd = 0, trace_sample = 0, max_dumps = 0;
  uint64_t fail_at = 0, kill_at = 0, crash_after = 0;
  uint64_t chunk = 0, skew = 0, straggler = 0, straggler_us = 0;
  if (!r.u64(&cwnd) || !r.i64(&rtt) || !r.i64(&staleness) ||
      !r.u32(&out->theta_vf) || !r.u8(&cc) || !r.i64(&sync) ||
      !r.boolean(&out->careful_resume) || !r.u8(&container) ||
      !r.boolean(&out->collect_metrics) || !r.u64(&trace_sample) ||
      !r.str(&out->trace_dir) || !r.boolean(&out->flight_recorder) ||
      !r.str(&out->anomaly_dir) || !r.i64(&ffct) || !r.u64(&max_dumps) ||
      !r.u64(&fail_at) || !r.u64(&kill_at) || !r.u64(&crash_after) ||
      !r.i64(&crash_sig) || !r.u64(&chunk) || !r.u64(&skew) ||
      !r.u64(&straggler) || !r.u64(&straggler_us)) {
    return false;
  }
  if (cc > static_cast<uint8_t>(cc::CcAlgo::kCubic)) return false;
  if (container > static_cast<uint8_t>(media::Container::kMpegTs)) {
    return false;
  }
  out->defaults.init_cwnd_exp = cwnd;
  out->defaults.init_rtt_exp = rtt;
  out->staleness_threshold = staleness;
  out->cc_algo = static_cast<cc::CcAlgo>(cc);
  out->sync_period = sync;
  out->container = static_cast<media::Container>(container);
  out->trace_sample = trace_sample;
  out->anomaly_ffct = ffct;
  out->anomaly_max_dumps = max_dumps;
  out->fail_at_index = fail_at;
  out->kill_at_index = kill_at;
  out->crash_after_index = crash_after;
  out->crash_after_signal = static_cast<int>(crash_sig);
  out->chunk = chunk;
  out->skew_delay_us = skew;
  out->straggler_worker = straggler;
  out->straggler_delay_us = straggler_us;
  return true;
}

// ---- frame layer --------------------------------------------------------

void append_stream_header(std::vector<uint8_t>& out) {
  CodecWriter w(out);
  w.u32(kRecordCodecMagic);
  w.u32(kRecordCodecVersion);
}

void append_frame(FrameType type, std::span<const uint8_t> payload,
                  std::vector<uint8_t>& out) {
  CodecWriter w(out);
  w.u8(static_cast<uint8_t>(type));
  w.u32(static_cast<uint32_t>(payload.size()));
  w.u64(fnv1a64(payload));
  w.bytes(payload);
}

FrameStatus read_stream_header(std::span<const uint8_t> data,
                               size_t* offset) {
  CodecReader r(data.subspan(std::min(*offset, data.size())));
  uint32_t magic = 0, version = 0;
  if (!r.u32(&magic) || !r.u32(&version)) return FrameStatus::kNeedMore;
  if (magic != kRecordCodecMagic || version != kRecordCodecVersion) {
    return FrameStatus::kCorrupt;
  }
  *offset += 8;
  return FrameStatus::kOk;
}

FrameStatus next_frame(std::span<const uint8_t> data, size_t* offset,
                       FrameView* out) {
  CodecReader r(data.subspan(std::min(*offset, data.size())));
  uint8_t type = 0;
  uint32_t len = 0;
  uint64_t checksum = 0;
  if (!r.u8(&type) || !r.u32(&len) || !r.u64(&checksum)) {
    return FrameStatus::kNeedMore;
  }
  if (type < static_cast<uint8_t>(FrameType::kSessionRecord) ||
      type > static_cast<uint8_t>(FrameType::kChunkAssign)) {
    return FrameStatus::kCorrupt;
  }
  if (r.remaining() < len) return FrameStatus::kNeedMore;
  const std::span<const uint8_t> payload =
      data.subspan(*offset + r.offset(), len);
  if (fnv1a64(payload) != checksum) return FrameStatus::kCorrupt;
  out->type = static_cast<FrameType>(type);
  out->payload = payload;
  *offset += r.offset() + len;
  return FrameStatus::kOk;
}

}  // namespace wira::exp
