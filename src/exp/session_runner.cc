#include "exp/session_runner.h"

#include <algorithm>

namespace wira::exp {

namespace {

using LinkSnapshot = detail::LinkWindow;

LinkSnapshot snapshot(const sim::Link& link) {
  const auto& st = link.stats();
  LinkSnapshot s;
  s.drops = st.queue_drops + st.wire_drops;
  s.attempts = st.delivered_packets + s.drops;
  return s;
}

double window_loss(const LinkSnapshot& before, const LinkSnapshot& after) {
  const uint64_t attempts = after.attempts - before.attempts;
  if (attempts == 0) return 0;
  return static_cast<double>(after.drops - before.drops) /
         static_cast<double>(attempts);
}

SessionResult run_impl(const SessionConfig& cfg,
                       const std::optional<app::ServerConfig::ManualInit>&
                           manual_init,
                       sim::EventLoop* reuse_loop,
                       std::vector<LinkSnapshot>* reuse_snapshots) {
  // Workspace mode: recycle the caller's loop (reset keeps slot/heap/
  // pool/arena capacity) instead of building one.  Everything below is
  // loop-relative, so a reset loop is indistinguishable from a fresh one.
  sim::EventLoop local_loop_storage;
  sim::EventLoop& loop = reuse_loop ? *reuse_loop : local_loop_storage;
  if (reuse_loop) loop.reset();
  // Arena accounting must stay per-session even though the recycled
  // arena's total is cumulative across sessions.
  const uint64_t arena_total_before = loop.arena().total_allocated();
  sim::Path path(loop, cfg.path, cfg.seed);
  media::LiveStream stream(cfg.stream, cfg.corpus_seed);
  // Declared before the server so they outlive every trace() call site.
  trace::Tracer local_tracer;
  trace::Tracer local_client_tracer;

  const uint64_t server_id = 7;
  const uint64_t client_id = cfg.seed;
  const uint32_t network_type = 0;
  const uint64_t od_key =
      core::od_pair_key(client_id, server_id, network_type);
  const crypto::Key master_key = crypto::key_from_string("wira-server-7");

  app::ServerConfig server_cfg;
  server_cfg.scheme = cfg.scheme;
  server_cfg.defaults = cfg.defaults;
  server_cfg.theta_vf = cfg.theta_vf;
  server_cfg.sync_period = cfg.sync_period;
  server_cfg.staleness_threshold = cfg.staleness_threshold;
  server_cfg.cc_algo = cfg.cc_algo;
  server_cfg.cookie_sync_enabled = cfg.cookie_sync_enabled;
  server_cfg.careful_resume = cfg.careful_resume;
  server_cfg.master_key = master_key;
  server_cfg.expected_od_key = od_key;
  server_cfg.origin_latency = cfg.origin_latency;
  server_cfg.ug_qos = cfg.ug_qos;
  server_cfg.manual_init = manual_init;

  app::WiraServer server(loop, stream, server_cfg,
                         [&path](std::vector<uint8_t> dgram) {
                           sim::Datagram d;
                           d.size = dgram.size();
                           d.payload = std::move(dgram);
                           path.forward().send(std::move(d));
                         });

  app::ClientCache cache;
  if (cfg.zero_rtt) {
    cache.server_configs[server_id] = server.server_config_id();
  }
  if (cfg.cookie) {
    core::HxQosRecord rec = *cfg.cookie;
    rec.od_key = od_key;
    core::CookieSealer sealer(master_key);
    cache.cookies.store(od_key, sealer.seal(rec),
                        rec.server_timestamp != kNoTime
                            ? rec.server_timestamp
                            : TimeNs{0});
  }

  app::ClientConfig client_cfg;
  client_cfg.client_id = client_id;
  client_cfg.server_id = server_id;
  client_cfg.network_type = network_type;
  client_cfg.theta_vf = cfg.theta_vf;
  client_cfg.supports_cookie_sync = cfg.client_supports_cookie;
  client_cfg.track_frames = cfg.track_frames;
  client_cfg.container = cfg.stream.container;

  app::PlayerClient client(loop, client_cfg, cache,
                           [&path](std::vector<uint8_t> dgram) {
                             sim::Datagram d;
                             d.size = dgram.size();
                             d.payload = std::move(dgram);
                             path.reverse().send(std::move(d));
                           });

  path.forward().set_receiver([&client](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) client.on_datagram(d.payload);
  });
  path.reverse().set_receiver([&server](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) server.on_datagram(d.payload);
  });

  // Observability: attach the caller's tracer, or a session-local one when
  // only the phase decomposition or the flight recorder needs one.
  trace::Tracer* tracer = cfg.tracer;
  if (tracer == nullptr && (cfg.collect_phases || cfg.recorder)) {
    tracer = &local_tracer;
  }
  if (tracer) server.set_tracer(tracer);
  trace::Tracer* client_tracer = cfg.client_tracer;
  if (client_tracer == nullptr && cfg.recorder) {
    client_tracer = &local_client_tracer;
  }
  if (client_tracer) client.set_tracer(client_tracer);
  if (cfg.recorder) {
    // The tap slot is recorder-reserved, so it composes with any qlog
    // streaming sink the caller attached above.  keep_buffer mirrors the
    // phase-extraction requirement; the client vantage never buffers.
    cfg.recorder->reset();
    tracer->set_tap(&cfg.recorder->server(), cfg.collect_phases);
    client_tracer->set_tap(&cfg.recorder->client(), /*keep_buffer=*/false);
  }

  // Per-frame loss windows over the bottleneck (data) direction.  The
  // snapshot vector is workspace scratch when recycling (cleared here,
  // capacity retained).
  std::vector<LinkSnapshot> local_snapshots_storage;
  std::vector<LinkSnapshot>& frame_snapshots =
      reuse_snapshots ? *reuse_snapshots : local_snapshots_storage;
  frame_snapshots.clear();
  LinkSnapshot start_snapshot;
  client.set_on_frame_complete([&](uint32_t /*frame_index*/) {
    frame_snapshots.push_back(snapshot(path.forward()));
  });

  loop.schedule_at(cfg.start_time, [&] {
    start_snapshot = snapshot(path.forward());
    client.start();
  });

  const TimeNs deadline = cfg.start_time + cfg.max_session_time;
  while (loop.now() < deadline) {
    loop.run_until(std::min(loop.now() + milliseconds(100), deadline));
    if (client.metrics().frame_complete_at.size() >= cfg.track_frames &&
        loop.now() >= cfg.start_time + 2 * cfg.sync_period) {
      break;  // everything measured (incl. at least one cookie sync)
    }
  }

  SessionResult result;
  const auto& m = client.metrics();
  result.zero_rtt = m.zero_rtt;
  result.first_frame_completed = m.first_frame_done();
  result.ffct = m.ffct();
  result.frames.resize(cfg.track_frames);
  LinkSnapshot prev = start_snapshot;
  // Guard on frame_snapshots itself (not frame_complete_at): the two are
  // filled by different callbacks, so a mismatch must never index out of
  // bounds here.
  for (uint32_t i = 0; i < cfg.track_frames; ++i) {
    if (i < m.frame_complete_at.size() && i < frame_snapshots.size()) {
      result.frames[i].completion = m.frame_time(i + 1);
      result.frames[i].loss_rate = window_loss(prev, frame_snapshots[i]);
      prev = frame_snapshots[i];
    }
  }
  if (result.first_frame_completed && !frame_snapshots.empty()) {
    result.fflr = window_loss(start_snapshot, frame_snapshots[0]);
  }
  result.ff_size =
      server.parser().complete() ? server.parser().ff_size() : 0;
  result.init = server.last_init();
  result.server_stats = server.connection().stats();
  if (result.server_stats.stream_bytes_sent > 0) {
    result.retransmission_ratio =
        static_cast<double>(result.server_stats.stream_bytes_retransmitted) /
        static_cast<double>(result.server_stats.stream_bytes_sent);
  }
  result.cookies_synced = server.cookies_synced();
  result.client_cookies_received = m.cookies_received;
  result.cwnd_fallback = server.ff_fallback_inits() > 0;
  result.zero_rtt_rejected = cfg.zero_rtt && !m.zero_rtt;
  if (cfg.collect_phases && tracer != nullptr) {
    obs::FfctBoundaries b = obs::boundaries_from_trace(*tracer);
    b.request_sent = m.request_sent_at;
    // Delivery ends at the first *video* byte so reorder/reassembly stalls
    // anywhere in the container prelude stay attributed to delivery.
    b.first_byte_received = m.first_frame_byte_at != kNoTime
                                ? m.first_frame_byte_at
                                : m.first_byte_at;
    b.first_frame_complete =
        m.frame_complete_at.empty() ? kNoTime : m.frame_complete_at[0];
    result.phases = obs::ffct_phases(b);
  }
  result.arena_bytes = loop.arena().total_allocated() - arena_total_before;
  return result;
}

}  // namespace

SessionResult run_session(const SessionConfig& config) {
  return run_impl(config, std::nullopt, nullptr, nullptr);
}

SessionResult run_session(const SessionConfig& config, SessionWorkspace& ws) {
  return run_session_with_workspace(config, &ws);
}

SessionResult run_session_with_workspace(const SessionConfig& config,
                                         SessionWorkspace* ws) {
  if (ws == nullptr) return run_impl(config, std::nullopt, nullptr, nullptr);
  ws->sessions_run_++;
  return run_impl(config, std::nullopt, &ws->loop_, &ws->frame_snapshots_);
}

SessionResult run_manual_init_session(const ManualInitConfig& config) {
  SessionConfig cfg;
  cfg.path = config.path;
  cfg.stream = config.stream;
  cfg.corpus_seed = config.corpus_seed;
  cfg.seed = config.seed;
  cfg.start_time = config.start_time;
  cfg.zero_rtt = true;
  cfg.cookie_sync_enabled = false;
  cfg.collect_phases = config.collect_phases;
  app::ServerConfig::ManualInit manual{config.init_cwnd_bytes,
                                       config.init_pacing};
  return run_impl(cfg, manual, nullptr, nullptr);
}

}  // namespace wira::exp
