#include "exp/population_experiment.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>

#include "media/stream_source.h"
#include "obs/qlog.h"
#include "util/thread_pool.h"

namespace wira::exp {

namespace {

std::string metric_name(const char* prefix, core::Scheme scheme) {
  std::string name(prefix);
  name += '.';
  name += core::scheme_name(scheme);
  return name;
}

/// Folds one session's results into the (worker-private) registry.  Only
/// additive quantities are recorded, so the post-join merge is
/// order-independent.
void record_session_metrics(obs::MetricsRegistry& m, const SessionRecord& rec,
                            const PopulationConfig& config) {
  for (const auto& [scheme, res] : rec.results) {
    m.inc(metric_name("sessions", scheme));
    if (!res.first_frame_completed) {
      m.inc(metric_name("first_frame_incomplete", scheme));
    } else {
      m.histogram(metric_name("ffct_us", scheme))
          .record(static_cast<uint64_t>(res.ffct / 1000));
      m.histogram(metric_name("fflr_ppm", scheme))
          .record(static_cast<uint64_t>(res.fflr * 1e6));
    }
    if (res.zero_rtt) m.inc(metric_name("zero_rtt", scheme));
    if (res.cwnd_fallback) {
      m.inc(metric_name("corner.cwnd_before_parse", scheme));
    }
    if (res.init.hx_stale) m.inc(metric_name("corner.stale_cookie", scheme));
    if (res.zero_rtt_rejected) {
      m.inc(metric_name("corner.zero_rtt_reject", scheme));
    }
    m.inc(metric_name("pto_fired", scheme), res.server_stats.ptos_fired);
    m.inc(metric_name("packets_sent", scheme),
          res.server_stats.packets_sent);
    m.inc(metric_name("packets_lost", scheme),
          res.server_stats.packets_lost);
    m.inc(metric_name("cookies_synced", scheme), res.cookies_synced);
    if (config.collect_metrics) {
      for (const obs::PhaseSpan& span : res.phases) {
        std::string name = "phase.";
        name += span.name;
        name += "_us.";
        name += core::scheme_name(scheme);
        m.histogram(name).record(
            static_cast<uint64_t>(span.duration() / 1000));
      }
    }
  }
}

/// Simulates session `i` of the population sweep.  All randomness derives
/// from (config.seed, i) and `population` is read-only, so sessions are
/// independent: the parallel runner calls this from worker threads and the
/// result is identical to the serial loop.
SessionRecord run_one_session(const PopulationConfig& config,
                              const popgen::Population& population,
                              size_t i) {
  Rng rng(config.seed ^ (0x5DEECE66Dull * (i + 1)));
  const popgen::OdPair od = population.random_od(rng);

  // Session timeline: the previous session happened `gap` before now;
  // the absolute epoch is randomized for drift-phase diversity.
  const TimeNs gap = popgen::Population::sample_session_gap(rng);
  const TimeNs prev_time = from_seconds(rng.uniform(60.0, 7200.0));
  const TimeNs start_time = prev_time + gap;

  const popgen::PathSample prev = od.sample(prev_time, rng);
  const popgen::PathSample now = od.sample(start_time, rng);

  SessionRecord rec;
  rec.conditions = now;
  rec.cookie_age = gap;
  rec.zero_rtt = rng.chance(config.p_zero_rtt);
  rec.had_cookie = rng.chance(config.p_cookie);

  SessionConfig base;
  base.path = popgen::OdPair::to_path_config(now);
  base.cc_algo = config.cc_algo;
  base.seed = rng.next() | 1;
  base.stream = media::sample_stream_profile(rng, i + 1);
  base.stream.container = config.container;
  base.corpus_seed = config.seed * 1000 + 99;
  base.start_time = start_time;
  base.theta_vf = config.theta_vf;
  base.zero_rtt = rec.zero_rtt;
  base.defaults = config.defaults;
  base.staleness_threshold = config.staleness_threshold;
  base.sync_period = config.sync_period;
  base.careful_resume = config.careful_resume;
  if (rec.had_cookie) {
    core::HxQosRecord cookie;
    cookie.min_rtt = prev.min_rtt;
    // The previous session's MaxBW is BBR's estimate from an
    // app-limited live flow: it saturates the path only during the join
    // burst, so it tends to *under*-estimate the true capacity.
    cookie.max_bw = static_cast<Bandwidth>(
        static_cast<double>(prev.max_bw) * rng.uniform(0.65, 1.0));
    cookie.server_timestamp = prev_time;
    // Extension triple: the loss the previous session experienced.
    cookie.loss_rate = prev.loss_rate * rng.uniform(0.7, 1.3);
    base.cookie = cookie;
  }

  // What a user-group model would predict for this client (§II-C).
  const auto ug = population.group_average_qos(od.group_id());
  core::HxQosRecord ug_qos;
  ug_qos.min_rtt = ug.mean_rtt;
  ug_qos.max_bw = ug.mean_bw;
  ug_qos.server_timestamp = start_time;
  base.ug_qos = ug_qos;

  const bool sampled =
      config.trace_sample > 0 && i % config.trace_sample == 0;
  for (core::Scheme scheme : config.schemes) {
    SessionConfig cfg = base;
    cfg.scheme = scheme;
    cfg.collect_phases = config.collect_metrics;
    trace::Tracer qlog_tracer;
    std::ofstream qlog;
    std::optional<obs::QlogStreamWriter> qlog_writer;
    if (sampled) {
      // One deterministic file per (session, scheme); workers never share
      // a stream, so sampling is parallel-safe.  The dump is standard
      // qlog (draft-ietf-quic-qlog written as JSONL, see obs/qlog.h).
      std::string name = "session_";
      name += std::to_string(i);
      name += '_';
      name += core::scheme_name(scheme);
      std::string path = config.trace_dir;
      path += '/';
      path += name;
      path += ".sqlog";
      qlog.open(path, std::ios::trunc);
      if (qlog) {
        obs::QlogTraceInfo info;
        info.title = name;
        info.group_id = name;
        qlog_writer.emplace(qlog, info);
        qlog_tracer.stream_to(&*qlog_writer,
                              /*keep_buffer=*/cfg.collect_phases);
        cfg.tracer = &qlog_tracer;
      }
    }
    rec.results.emplace(scheme, run_session(cfg));
  }
  if (!rec.results.empty()) {
    rec.ff_size = rec.results.begin()->second.ff_size;
  }
  return rec;
}

}  // namespace

std::vector<SessionRecord> run_population(const PopulationConfig& config,
                                          obs::MetricsRegistry* metrics) {
  const size_t threads =
      util::ThreadPool::clamp_threads(config.threads, config.sessions);
  if (config.trace_sample > 0) {
    std::filesystem::create_directories(config.trace_dir);
  }

  if (threads <= 1) {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    std::vector<SessionRecord> records;
    records.reserve(config.sessions);
    for (size_t i = 0; i < config.sessions; ++i) {
      records.push_back(run_one_session(config, population, i));
      if (metrics) record_session_metrics(*metrics, records.back(), config);
    }
    return records;
  }

  // Parallel sweep: workers pull session indices from a shared counter and
  // write into index-addressed slots, so scheduling order never affects
  // the output.  Each worker builds its own Population (deterministic in
  // config.seed, hence identical across workers) to keep everything it
  // touches thread-private.  Metrics follow the same pattern: one private
  // registry per worker, merged after the join; the merge is commutative
  // (bucket-wise addition), so which worker ran which session cannot leak
  // into the aggregate.
  std::vector<SessionRecord> records(config.sessions);
  std::vector<obs::MetricsRegistry> worker_metrics(metrics ? threads : 0);
  std::atomic<size_t> next{0};
  util::ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    obs::MetricsRegistry* local = metrics ? &worker_metrics[w] : nullptr;
    futures.push_back(pool.submit([&config, &records, &next, local] {
      popgen::Population population(config.seed * 31 + 7, config.num_groups);
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= config.sessions) return;
        records[i] = run_one_session(config, population, i);
        if (local) record_session_metrics(*local, records[i], config);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (metrics) {
    for (const obs::MetricsRegistry& local : worker_metrics) {
      metrics->merge(local);
    }
  }
  return records;
}

}  // namespace wira::exp
