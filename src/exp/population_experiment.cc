#include "exp/population_experiment.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <optional>

#include "exp/record_codec.h"
#include "media/stream_source.h"
#include "obs/qlog.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace wira::exp {

namespace {

std::string metric_name(const char* prefix, core::Scheme scheme) {
  std::string name(prefix);
  name += '.';
  name += core::scheme_name(scheme);
  return name;
}

/// Folds one session's results into the (worker-private) registry.  Only
/// additive quantities are recorded, so the post-join merge is
/// order-independent.
void record_session_metrics(obs::MetricsRegistry& m, const SessionRecord& rec,
                            const PopulationConfig& config) {
  for (const auto& [scheme, res] : rec.results) {
    m.inc(metric_name("sessions", scheme));
    if (!res.first_frame_completed) {
      m.inc(metric_name("first_frame_incomplete", scheme));
    } else {
      m.histogram(metric_name("ffct_us", scheme))
          .record(static_cast<uint64_t>(res.ffct / 1000));
      m.histogram(metric_name("fflr_ppm", scheme))
          .record(static_cast<uint64_t>(res.fflr * 1e6));
    }
    if (res.zero_rtt) m.inc(metric_name("zero_rtt", scheme));
    if (res.cwnd_fallback) {
      m.inc(metric_name("corner.cwnd_before_parse", scheme));
    }
    if (res.init.hx_stale) m.inc(metric_name("corner.stale_cookie", scheme));
    if (res.zero_rtt_rejected) {
      m.inc(metric_name("corner.zero_rtt_reject", scheme));
    }
    m.inc(metric_name("pto_fired", scheme), res.server_stats.ptos_fired);
    m.inc(metric_name("packets_sent", scheme),
          res.server_stats.packets_sent);
    m.inc(metric_name("packets_lost", scheme),
          res.server_stats.packets_lost);
    m.inc(metric_name("cookies_synced", scheme), res.cookies_synced);
    if (config.collect_metrics) {
      for (const obs::PhaseSpan& span : res.phases) {
        std::string name = "phase.";
        name += span.name;
        name += "_us.";
        name += core::scheme_name(scheme);
        m.histogram(name).record(
            static_cast<uint64_t>(span.duration() / 1000));
      }
    }
  }
  // Folded from the record (not counted at the failing open) so serial,
  // threaded, multiprocess and salvage-retry runs all agree exactly.
  if (rec.trace_open_failures > 0) {
    m.inc("trace.open_failed", rec.trace_open_failures);
  }
}

/// Simulates session `i` of the population sweep.  All randomness derives
/// from (config.seed, i) and `population` is read-only, so sessions are
/// independent: the parallel runner calls this from worker threads and the
/// result is identical to the serial loop.
SessionRecord run_one_session(const PopulationConfig& config,
                              const popgen::Population& population,
                              size_t i) {
  if (i == config.fail_at_index) {
    throw std::runtime_error("injected failure at session " +
                             std::to_string(i));
  }
  Rng rng(config.seed ^ (0x5DEECE66Dull * (i + 1)));
  const popgen::OdPair od = population.random_od(rng);

  // Session timeline: the previous session happened `gap` before now;
  // the absolute epoch is randomized for drift-phase diversity.
  const TimeNs gap = popgen::Population::sample_session_gap(rng);
  const TimeNs prev_time = from_seconds(rng.uniform(60.0, 7200.0));
  const TimeNs start_time = prev_time + gap;

  const popgen::PathSample prev = od.sample(prev_time, rng);
  const popgen::PathSample now = od.sample(start_time, rng);

  SessionRecord rec;
  rec.conditions = now;
  rec.cookie_age = gap;
  rec.zero_rtt = rng.chance(config.p_zero_rtt);
  rec.had_cookie = rng.chance(config.p_cookie);

  SessionConfig base;
  base.path = popgen::OdPair::to_path_config(now);
  base.cc_algo = config.cc_algo;
  base.seed = rng.next() | 1;
  base.stream = media::sample_stream_profile(rng, i + 1);
  base.stream.container = config.container;
  base.corpus_seed = config.seed * 1000 + 99;
  base.start_time = start_time;
  base.theta_vf = config.theta_vf;
  base.zero_rtt = rec.zero_rtt;
  base.defaults = config.defaults;
  base.staleness_threshold = config.staleness_threshold;
  base.sync_period = config.sync_period;
  base.careful_resume = config.careful_resume;
  if (rec.had_cookie) {
    core::HxQosRecord cookie;
    cookie.min_rtt = prev.min_rtt;
    // The previous session's MaxBW is BBR's estimate from an
    // app-limited live flow: it saturates the path only during the join
    // burst, so it tends to *under*-estimate the true capacity.
    cookie.max_bw = static_cast<Bandwidth>(
        static_cast<double>(prev.max_bw) * rng.uniform(0.65, 1.0));
    cookie.server_timestamp = prev_time;
    // Extension triple: the loss the previous session experienced.
    cookie.loss_rate = prev.loss_rate * rng.uniform(0.7, 1.3);
    base.cookie = cookie;
  }

  // What a user-group model would predict for this client (§II-C).
  const auto ug = population.group_average_qos(od.group_id());
  core::HxQosRecord ug_qos;
  ug_qos.min_rtt = ug.mean_rtt;
  ug_qos.max_bw = ug.mean_bw;
  ug_qos.server_timestamp = start_time;
  base.ug_qos = ug_qos;

  const bool sampled =
      config.trace_sample > 0 && i % config.trace_sample == 0;
  for (core::Scheme scheme : config.schemes) {
    SessionConfig cfg = base;
    cfg.scheme = scheme;
    cfg.collect_phases = config.collect_metrics;
    trace::Tracer qlog_tracer;
    std::ofstream qlog;
    std::optional<obs::QlogStreamWriter> qlog_writer;
    if (sampled) {
      // One deterministic file per (session, scheme); workers never share
      // a stream, so sampling is parallel-safe.  The dump is standard
      // qlog (draft-ietf-quic-qlog written as JSONL, see obs/qlog.h).
      std::string name = "session_";
      name += std::to_string(i);
      name += '_';
      name += core::scheme_name(scheme);
      std::string path = config.trace_dir;
      path += '/';
      path += name;
      path += ".sqlog";
      qlog.open(path, std::ios::trunc);
      if (qlog) {
        obs::QlogTraceInfo info;
        info.title = name;
        info.group_id = name;
        qlog_writer.emplace(qlog, info);
        qlog_tracer.stream_to(&*qlog_writer,
                              /*keep_buffer=*/cfg.collect_phases);
        cfg.tracer = &qlog_tracer;
      } else {
        // A sampled session must never be *silently* untraced: name the
        // file, run the session untraced, and surface the miss as the
        // trace.open_failed counter.
        WIRA_WARN("population",
                  "cannot open qlog sample " + path +
                      ": session runs untraced");
        rec.trace_open_failures++;
      }
    }
    rec.results.emplace(scheme, run_session(cfg));
  }
  if (!rec.results.empty()) {
    rec.ff_size = rec.results.begin()->second.ff_size;
  }
  return rec;
}

// ---- multiprocess sharding (DESIGN.md §6) -------------------------------
//
// The parent forks N workers; worker w owns the contiguous stripe
// [stripe_begin(w), stripe_end(w)) of session indices and streams each
// completed record immediately as a checksummed codec frame, so a crash
// loses only the sessions it never finished.  The parent multiplexes all
// pipes with poll() (a pipe-buffer-bound worker just waits for the parent,
// never deadlocks), reaps every child with waitpid, and classifies each
// worker as clean (kEnd frame seen + exit 0) or dead (signal, nonzero
// exit, truncated or corrupt stream).

struct Stripe {
  size_t begin = 0;
  size_t end = 0;
};

/// Contiguous, balanced stripes: the first (sessions % workers) stripes
/// get one extra index.  Contiguity is what makes "the session the dead
/// worker was on" well-defined — frames arrive in index order per worker.
std::vector<Stripe> make_stripes(size_t sessions, size_t workers) {
  std::vector<Stripe> stripes(workers);
  const size_t base = sessions / workers;
  const size_t extra = sessions % workers;
  size_t at = 0;
  for (size_t w = 0; w < workers; ++w) {
    stripes[w].begin = at;
    at += base + (w < extra ? 1 : 0);
    stripes[w].end = at;
  }
  return stripes;
}

bool write_all(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Worker child body.  Never returns: _Exit skips atexit/stdio teardown
/// inherited from the parent (0 = clean, 1 = session threw, 3 = pipe
/// write failed, i.e. the parent went away).
[[noreturn]] void run_worker_child(const PopulationConfig& config,
                                   Stripe stripe, bool want_metrics,
                                   int fd) {
  int exit_code = 0;
  std::vector<uint8_t> buf;
  append_stream_header(buf);
  obs::MetricsRegistry local;
  try {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    for (size_t i = stripe.begin; i < stripe.end; ++i) {
      if (i == config.kill_at_index) {
        (void)write_all(fd, buf.data(), buf.size());  // flush pre-kill
        std::raise(SIGKILL);
      }
      const SessionRecord rec = run_one_session(config, population, i);
      if (want_metrics) record_session_metrics(local, rec, config);
      std::vector<uint8_t> payload;
      CodecWriter w(payload);
      w.u64(i);
      encode_session_record(rec, w);
      append_frame(FrameType::kSessionRecord, payload, buf);
      // Stream eagerly: everything written is salvage if we die later.
      if (!write_all(fd, buf.data(), buf.size())) {
        exit_code = 3;
        break;
      }
      buf.clear();
    }
    if (exit_code == 0) {
      buf.clear();
      if (want_metrics) {
        std::vector<uint8_t> payload;
        CodecWriter w(payload);
        encode_metrics_registry(local, w);
        append_frame(FrameType::kMetrics, payload, buf);
      }
      append_frame(FrameType::kEnd, {}, buf);
      if (!write_all(fd, buf.data(), buf.size())) exit_code = 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wira population worker [%zu,%zu): %s\n",
                 stripe.begin, stripe.end, e.what());
    exit_code = 1;
  } catch (...) {
    exit_code = 1;
  }
  ::close(fd);
  std::_Exit(exit_code);
}

/// Decodes one worker's byte stream into `records` (bounds- and
/// duplicate-checked against its stripe).  Returns true iff the stream is
/// complete and clean; otherwise *reason describes the defect.
bool parse_worker_stream(std::span<const uint8_t> bytes, Stripe stripe,
                         std::vector<SessionRecord>& records,
                         std::vector<uint8_t>& have,
                         obs::MetricsRegistry* worker_metrics,
                         std::string* reason) {
  size_t off = 0;
  switch (read_stream_header(bytes, &off)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kNeedMore:
      *reason = "truncated record stream (no header)";
      return false;
    case FrameStatus::kCorrupt:
      *reason = "bad codec magic/version";
      return false;
  }
  bool saw_metrics = false;
  for (;;) {
    FrameView frame;
    switch (next_frame(bytes, &off, &frame)) {
      case FrameStatus::kNeedMore:
        *reason = off >= bytes.size()
                      ? "truncated record stream (no end marker)"
                      : "truncated frame";
        return false;
      case FrameStatus::kCorrupt:
        *reason = "corrupt frame (checksum or type)";
        return false;
      case FrameStatus::kOk:
        break;
    }
    if (frame.type == FrameType::kEnd) {
      if (off != bytes.size()) {
        *reason = "trailing bytes after end marker";
        return false;
      }
      return true;
    }
    if (frame.type == FrameType::kSessionRecord) {
      CodecReader r(frame.payload);
      uint64_t index = 0;
      SessionRecord rec;
      if (!r.u64(&index) || !decode_session_record(r, &rec) ||
          r.remaining() != 0) {
        *reason = "undecodable session record";
        return false;
      }
      if (index < stripe.begin || index >= stripe.end || have[index]) {
        *reason = "session index outside stripe or duplicated";
        return false;
      }
      records[index] = std::move(rec);
      have[index] = 1;
      continue;
    }
    // kMetrics
    if (worker_metrics == nullptr || saw_metrics) {
      *reason = "unexpected metrics frame";
      return false;
    }
    CodecReader r(frame.payload);
    if (!decode_metrics_registry(r, worker_metrics) || r.remaining() != 0) {
      *reason = "undecodable metrics registry";
      return false;
    }
    saw_metrics = true;
  }
}

std::vector<SessionRecord> run_population_multiprocess(
    const PopulationConfig& config, obs::MetricsRegistry* metrics,
    size_t workers) {
  const std::vector<Stripe> stripes = make_stripes(config.sessions, workers);

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::vector<uint8_t> bytes;
    int status = 0;
  };
  std::vector<Worker> ws(workers);
  for (size_t w = 0; w < workers; ++w) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      for (size_t k = 0; k < w; ++k) {
        ::close(ws[k].fd);
        ::kill(ws[k].pid, SIGKILL);
        ::waitpid(ws[k].pid, nullptr, 0);
      }
      throw std::runtime_error("run_population: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      for (size_t k = 0; k < w; ++k) {
        ::close(ws[k].fd);
        ::kill(ws[k].pid, SIGKILL);
        ::waitpid(ws[k].pid, nullptr, 0);
      }
      throw std::runtime_error("run_population: fork() failed");
    }
    if (pid == 0) {
      // Child: drop every parent-side read end so sibling EOFs work.
      for (size_t k = 0; k < w; ++k) ::close(ws[k].fd);
      ::close(fds[0]);
      run_worker_child(config, stripes[w], metrics != nullptr, fds[1]);
    }
    ::close(fds[1]);
    ws[w].pid = pid;
    ws[w].fd = fds[0];
  }

  // Multiplexed drain: read every pipe until EOF.  poll() keeps all
  // workers flowing even when one stripe's records outrun the 64 KiB pipe
  // buffer — the blocked worker resumes as soon as we drain it here.
  size_t open_fds = workers;
  std::vector<pollfd> pfds;
  std::vector<size_t> pfd_worker;
  uint8_t chunk[65536];
  while (open_fds > 0) {
    pfds.clear();
    pfd_worker.clear();
    for (size_t w = 0; w < workers; ++w) {
      if (ws[w].fd < 0) continue;
      pfds.push_back(pollfd{ws[w].fd, POLLIN, 0});
      pfd_worker.push_back(w);
    }
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("run_population: poll() failed");
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& worker = ws[pfd_worker[p]];
      const ssize_t n = ::read(worker.fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(worker.fd);
        worker.fd = -1;
        open_fds--;
        continue;
      }
      if (n == 0) {
        ::close(worker.fd);
        worker.fd = -1;
        open_fds--;
        continue;
      }
      worker.bytes.insert(worker.bytes.end(), chunk, chunk + n);
    }
  }
  for (Worker& worker : ws) {
    while (::waitpid(worker.pid, &worker.status, 0) < 0 && errno == EINTR) {
    }
  }

  // Reassemble index-addressed, then classify each worker.
  std::vector<SessionRecord> records(config.sessions);
  std::vector<uint8_t> have(config.sessions, 0);
  std::vector<obs::MetricsRegistry> worker_metrics(metrics ? workers : 0);
  std::vector<ShardDeath> deaths;
  for (size_t w = 0; w < workers; ++w) {
    std::string parse_reason;
    const bool clean = parse_worker_stream(
        ws[w].bytes, stripes[w], records, have,
        metrics ? &worker_metrics[w] : nullptr, &parse_reason);
    std::string reason;
    if (WIFSIGNALED(ws[w].status)) {
      reason = "killed by signal " + std::to_string(WTERMSIG(ws[w].status));
    } else if (WIFEXITED(ws[w].status) && WEXITSTATUS(ws[w].status) != 0) {
      reason =
          "exited with status " + std::to_string(WEXITSTATUS(ws[w].status));
    } else if (!clean) {
      reason = parse_reason;
    }
    if (reason.empty()) continue;
    ShardDeath death;
    death.worker = static_cast<int>(w);
    death.stripe_begin = stripes[w].begin;
    death.stripe_end = stripes[w].end;
    death.died_at = stripes[w].end;
    for (size_t i = stripes[w].begin; i < stripes[w].end; ++i) {
      if (!have[i]) {
        death.died_at = i;
        break;
      }
    }
    death.reason = std::move(reason);
    deaths.push_back(std::move(death));
  }

  if (!deaths.empty()) {
    std::vector<size_t> missing;
    for (size_t i = 0; i < config.sessions; ++i) {
      if (!have[i]) missing.push_back(i);
    }
    std::string msg = "run_population: ";
    for (size_t d = 0; d < deaths.size(); ++d) {
      if (d > 0) msg += "; ";
      msg += "worker " + std::to_string(deaths[d].worker) + " (sessions [" +
             std::to_string(deaths[d].stripe_begin) + "," +
             std::to_string(deaths[d].stripe_end) + ")) " +
             deaths[d].reason + " while on session " +
             std::to_string(deaths[d].died_at);
    }
    msg += "; salvaged " + std::to_string(config.sessions - missing.size()) +
           " of " + std::to_string(config.sessions) + " records";
    if (!config.retry_dead_shards) {
      throw PopulationShardError(msg, std::move(deaths), std::move(records),
                                 std::move(missing));
    }
    WIRA_WARN("population",
              msg + "; retrying " + std::to_string(missing.size()) +
                  " missing session(s) in-process");
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    for (const size_t i : missing) {
      records[i] = run_one_session(config, population, i);
      have[i] = 1;
    }
    if (metrics) {
      // A dead worker's registry never arrived (the metrics frame trails
      // the stripe).  record_session_metrics is a pure function of the
      // record, so rebuilding the whole stripe from the reassembled
      // records reproduces it exactly.
      for (const ShardDeath& death : deaths) {
        obs::MetricsRegistry rebuilt;
        for (size_t i = death.stripe_begin; i < death.stripe_end; ++i) {
          record_session_metrics(rebuilt, records[i], config);
        }
        worker_metrics[static_cast<size_t>(death.worker)] =
            std::move(rebuilt);
      }
    }
  }

  if (metrics) {
    for (const obs::MetricsRegistry& local : worker_metrics) {
      metrics->merge(local);
    }
  }
  return records;
}

}  // namespace

std::vector<SessionRecord> run_population(const PopulationConfig& config,
                                          obs::MetricsRegistry* metrics) {
  const size_t threads =
      util::ThreadPool::clamp_threads(config.threads, config.sessions);
  if (config.trace_sample > 0) {
    // Non-fatal on purpose: a broken trace destination degrades to
    // untraced sessions (warned + counted per open), never a dead sweep.
    std::error_code ec;
    std::filesystem::create_directories(config.trace_dir, ec);
    if (ec) {
      WIRA_WARN("population", "cannot create trace dir " + config.trace_dir +
                                  ": " + ec.message());
    }
  }

  const size_t processes =
      util::ThreadPool::clamp_threads(config.processes, config.sessions);
  if (processes > 1) {
    return run_population_multiprocess(config, metrics, processes);
  }

  if (threads <= 1) {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    std::vector<SessionRecord> records;
    records.reserve(config.sessions);
    for (size_t i = 0; i < config.sessions; ++i) {
      records.push_back(run_one_session(config, population, i));
      if (metrics) record_session_metrics(*metrics, records.back(), config);
    }
    return records;
  }

  // Parallel sweep: workers pull session indices from a shared counter and
  // write into index-addressed slots, so scheduling order never affects
  // the output.  Each worker builds its own Population (deterministic in
  // config.seed, hence identical across workers) to keep everything it
  // touches thread-private.  Metrics follow the same pattern: one private
  // registry per worker, merged after the join; the merge is commutative
  // (bucket-wise addition), so which worker ran which session cannot leak
  // into the aggregate.
  std::vector<SessionRecord> records(config.sessions);
  std::vector<obs::MetricsRegistry> worker_metrics(metrics ? threads : 0);
  std::atomic<size_t> next{0};
  util::ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    obs::MetricsRegistry* local = metrics ? &worker_metrics[w] : nullptr;
    futures.push_back(pool.submit([&config, &records, &next, local] {
      popgen::Population population(config.seed * 31 + 7, config.num_groups);
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= config.sessions) return;
        try {
          records[i] = run_one_session(config, population, i);
        } catch (...) {
          // Park the shared counter at the end so the other workers stop
          // claiming new sessions: without this, one failure would let the
          // rest of the sweep run to completion before the rethrow below
          // surfaced it.
          next.store(config.sessions, std::memory_order_relaxed);
          throw;
        }
        if (local) record_session_metrics(*local, records[i], config);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (metrics) {
    for (const obs::MetricsRegistry& local : worker_metrics) {
      metrics->merge(local);
    }
  }
  return records;
}

}  // namespace wira::exp
