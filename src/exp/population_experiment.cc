#include "exp/population_experiment.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>

#include "exp/record_codec.h"
#include "exp/record_sink.h"
#include "media/stream_source.h"
#include "obs/qlog.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace wira::exp {

namespace {

std::string metric_name(const char* prefix, core::Scheme scheme) {
  std::string name(prefix);
  name += '.';
  name += core::scheme_name(scheme);
  return name;
}

}  // namespace

void record_session_metrics(obs::MetricsRegistry& m, const SessionRecord& rec,
                            bool include_phases) {
  for (const auto& [scheme, res] : rec.results) {
    m.inc(metric_name("sessions", scheme));
    if (!res.first_frame_completed) {
      m.inc(metric_name("first_frame_incomplete", scheme));
    } else {
      m.histogram(metric_name("ffct_us", scheme))
          .record(static_cast<uint64_t>(res.ffct / 1000));
      m.histogram(metric_name("fflr_ppm", scheme))
          .record(static_cast<uint64_t>(res.fflr * 1e6));
    }
    if (res.zero_rtt) m.inc(metric_name("zero_rtt", scheme));
    if (res.cwnd_fallback) {
      m.inc(metric_name("corner.cwnd_before_parse", scheme));
    }
    if (res.init.hx_stale) m.inc(metric_name("corner.stale_cookie", scheme));
    if (res.zero_rtt_rejected) {
      m.inc(metric_name("corner.zero_rtt_reject", scheme));
    }
    m.inc(metric_name("pto_fired", scheme), res.server_stats.ptos_fired);
    m.inc(metric_name("packets_sent", scheme),
          res.server_stats.packets_sent);
    m.inc(metric_name("packets_lost", scheme),
          res.server_stats.packets_lost);
    m.inc(metric_name("cookies_synced", scheme), res.cookies_synced);
    if (include_phases) {
      for (const obs::PhaseSpan& span : res.phases) {
        std::string name = "phase.";
        name += span.name;
        name += "_us.";
        name += core::scheme_name(scheme);
        m.histogram(name).record(
            static_cast<uint64_t>(span.duration() / 1000));
      }
    }
  }
  // Folded from the record (not counted at the failing open) so serial,
  // threaded, multiprocess and salvage-retry runs all agree exactly.
  if (rec.trace_open_failures > 0) {
    m.inc("trace.open_failed", rec.trace_open_failures);
  }
  // Flight-recorder anomaly triggers, by trigger kind (exported by
  // wira_exporterd as wira_anomaly_dumps_total{trigger=...}).
  if (rec.anomaly_stall_dumps > 0) {
    m.inc("anomaly.dumps.stall", rec.anomaly_stall_dumps);
  }
  if (rec.anomaly_corner_dumps > 0) {
    m.inc("anomaly.dumps.corner_case", rec.anomaly_corner_dumps);
  }
  if (rec.anomaly_decode_dumps > 0) {
    m.inc("anomaly.dumps.decode_error", rec.anomaly_decode_dumps);
  }
  if (rec.anomaly_ffct_dumps > 0) {
    m.inc("anomaly.dumps.ffct", rec.anomaly_ffct_dumps);
  }
}

namespace {

// ---- flight-recorder anomaly path (DESIGN.md §7) ------------------------

enum class AnomalyTrigger { kNone, kStall, kCornerCase, kDecodeError, kFfct };

/// The anomaly trigger (if any) for one completed (session, scheme) run:
/// the highest-priority condition wins, so each run yields at most one
/// dump with an unambiguous label.  Pure function of the session — every
/// execution mode (serial / threads / procs / salvage-retry) computes the
/// same triggers, which is what keeps records byte-identical.
AnomalyTrigger anomaly_trigger(const PopulationConfig& config,
                               const obs::FlightRecorder& fr,
                               const SessionResult& res) {
  if (fr.count(trace::EventType::kStallObserved) > 0) {
    return AnomalyTrigger::kStall;
  }
  if (res.cwnd_fallback || res.init.hx_stale || res.zero_rtt_rejected ||
      fr.count(trace::EventType::kCornerCase) > 0) {
    return AnomalyTrigger::kCornerCase;
  }
  if (res.server_stats.packets_undecodable > 0 ||
      fr.count(trace::EventType::kDecodeError) > 0) {
    return AnomalyTrigger::kDecodeError;
  }
  if (config.anomaly_ffct != kNoTime &&
      (!res.first_frame_completed || res.ffct > config.anomaly_ffct)) {
    return AnomalyTrigger::kFfct;
  }
  return AnomalyTrigger::kNone;
}

/// Materializes the triggering session's rings as a standard paired qlog
/// sample under anomaly_dir — same naming and format as --trace-sample
/// artifacts, so wira_trace_join joins anomaly dumps unchanged.  File
/// I/O failures warn and drop the dump (never the sweep); the trigger
/// counter was already taken, so counters stay deterministic.
void write_anomaly_dump(const PopulationConfig& config,
                        const obs::FlightRecorder& fr,
                        const std::string& name) {
  const std::string base = config.anomaly_dir + "/" + name;
  std::ofstream server_os(base + ".server.sqlog", std::ios::trunc);
  std::ofstream client_os(base + ".client.sqlog", std::ios::trunc);
  if (!server_os || !client_os) {
    WIRA_WARN("population",
              "cannot open anomaly dump " + base + ".{server,client}.sqlog");
    return;
  }
  fr.write_sqlog_pair(server_os, client_os, name);
}

// ---- crash forensics (multiprocess workers, DESIGN.md §7) ---------------
//
// A worker child dying on a fatal signal dumps the in-flight session's
// recorder rings to a pre-opened fd before re-raising, so PR 5's "killed
// by signal N while on session i" diagnosis comes with the victim's event
// history.  Everything the handler touches is async-signal-safe:
// lock-free atomics, raw write(2) via FlightRecorder::crash_dump, no
// allocation, no locks, no stdio.  The globals are per-process state;
// only forked worker children arm the handler, so the parent process
// (and the threaded runner) never take this path.

struct CrashForensics {
  std::atomic<int> fd{-1};  ///< pre-opened dump fd; -1 = disarmed
  std::atomic<const obs::FlightRecorder*> recorder{nullptr};
  std::atomic<uint64_t> session_index{0};
  std::atomic<uint32_t> scheme{0};
};
CrashForensics g_crash;

extern "C" void wira_crash_signal_handler(int sig) {
  const int fd = g_crash.fd.load(std::memory_order_acquire);
  const obs::FlightRecorder* rec =
      g_crash.recorder.load(std::memory_order_acquire);
  if (fd >= 0 && rec != nullptr) {
    (void)rec->crash_dump(
        fd, g_crash.session_index.load(std::memory_order_acquire),
        g_crash.scheme.load(std::memory_order_acquire));
  }
  // Re-raise with the default disposition so the parent's waitpid sees
  // the true terminating signal.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// Arms the fatal-signal dump in a worker child: pre-opens the raw dump
/// file (the only step that may allocate — it happens before any session
/// runs) and installs the handler for the fatal-by-default signals.
void arm_crash_forensics(const PopulationConfig& config, size_t worker,
                         const obs::FlightRecorder* recorder) {
  if (!config.flight_recorder || config.anomaly_dir.empty()) return;
  const std::string path =
      config.anomaly_dir + "/crash_worker_" + std::to_string(worker) + ".bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    WIRA_WARN("population", "cannot pre-open crash dump " + path +
                                "; worker runs without signal forensics");
    return;
  }
  g_crash.recorder.store(recorder, std::memory_order_release);
  g_crash.fd.store(fd, std::memory_order_release);
  struct sigaction sa = {};
  sa.sa_handler = wira_crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

/// Tags the recorder state the handler would dump (cheap atomic stores;
/// called per (session, scheme) before the run so a mid-session crash is
/// attributed to the right pair).
void note_crash_session(size_t i, core::Scheme scheme) {
  g_crash.session_index.store(i, std::memory_order_relaxed);
  g_crash.scheme.store(static_cast<uint32_t>(scheme),
                       std::memory_order_release);
}

/// Parent side: reads each worker's raw crash-dump file (if its handler
/// wrote one), materializes it as a joinable
/// crash_session_<i>_<scheme>.{server,client}.sqlog pair, counts it as
/// `anomaly.dumps.crash`, and removes the raw file.  Records are never
/// touched, so salvage/retry output stays byte-identical to serial.
void materialize_crash_dumps(const PopulationConfig& config, size_t workers,
                             obs::MetricsRegistry* metrics) {
  if (!config.flight_recorder || config.anomaly_dir.empty()) return;
  for (size_t w = 0; w < workers; ++w) {
    const std::string path =
        config.anomaly_dir + "/crash_worker_" + std::to_string(w) + ".bin";
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) continue;  // worker never armed, or nothing pre-opened
    if (size > 0) {
      std::ifstream in(path, std::ios::binary);
      obs::FlightRecorder::CrashDump dump;
      std::string error;
      if (in && obs::FlightRecorder::read_crash_dump(in, &dump, &error)) {
        std::string name = "crash_session_";
        name += std::to_string(dump.session_index);
        name += '_';
        name += core::scheme_name(static_cast<core::Scheme>(dump.scheme));
        const std::string base = config.anomaly_dir + "/" + name;
        std::ofstream server_os(base + ".server.sqlog", std::ios::trunc);
        std::ofstream client_os(base + ".client.sqlog", std::ios::trunc);
        if (server_os && client_os) {
          obs::QlogTraceInfo sinfo;
          sinfo.title = name;
          sinfo.group_id = name;
          obs::write_events_sqlog(server_os, dump.server_events, sinfo);
          obs::QlogTraceInfo cinfo;
          cinfo.title = name;
          cinfo.group_id = name;
          cinfo.vantage_point_name = "wira-client";
          cinfo.vantage_point_type = "client";
          obs::write_events_sqlog(client_os, dump.client_events, cinfo);
          WIRA_WARN("population", "crash forensics: worker " +
                                      std::to_string(w) + " left " + base +
                                      ".{server,client}.sqlog");
          if (metrics) metrics->inc("anomaly.dumps.crash");
        }
      } else {
        WIRA_WARN("population",
                  "crash forensics: cannot parse " + path + ": " + error);
      }
    }
    std::filesystem::remove(path, ec);
  }
}

/// Simulates session `i` of the population sweep.  All randomness derives
/// from (config.seed, i) and `population` is read-only, so sessions are
/// independent: the parallel runner calls this from worker threads and the
/// result is identical to the serial loop.  `ws` is the caller's recycled
/// session machinery (one per worker): reusing it across sessions is what
/// keeps steady-state heap allocations bounded (DESIGN.md §6).
SessionRecord run_one_session(const PopulationConfig& config,
                              const popgen::Population& population,
                              size_t i, SessionWorkspace& ws) {
  if (i == config.fail_at_index) {
    throw std::runtime_error("injected failure at session " +
                             std::to_string(i));
  }
  Rng rng(config.seed ^ (0x5DEECE66Dull * (i + 1)));
  const popgen::OdPair od = population.random_od(rng);

  // Session timeline: the previous session happened `gap` before now;
  // the absolute epoch is randomized for drift-phase diversity.
  const TimeNs gap = popgen::Population::sample_session_gap(rng);
  const TimeNs prev_time = from_seconds(rng.uniform(60.0, 7200.0));
  const TimeNs start_time = prev_time + gap;

  const popgen::PathSample prev = od.sample(prev_time, rng);
  const popgen::PathSample now = od.sample(start_time, rng);

  SessionRecord rec;
  rec.conditions = now;
  rec.cookie_age = gap;
  rec.zero_rtt = rng.chance(config.p_zero_rtt);
  rec.had_cookie = rng.chance(config.p_cookie);

  SessionConfig base;
  base.path = popgen::OdPair::to_path_config(now);
  base.cc_algo = config.cc_algo;
  base.seed = rng.next() | 1;
  base.stream = media::sample_stream_profile(rng, i + 1);
  base.stream.container = config.container;
  base.corpus_seed = config.seed * 1000 + 99;
  base.start_time = start_time;
  base.theta_vf = config.theta_vf;
  base.zero_rtt = rec.zero_rtt;
  base.defaults = config.defaults;
  base.staleness_threshold = config.staleness_threshold;
  base.sync_period = config.sync_period;
  base.careful_resume = config.careful_resume;
  if (rec.had_cookie) {
    core::HxQosRecord cookie;
    cookie.min_rtt = prev.min_rtt;
    // The previous session's MaxBW is BBR's estimate from an
    // app-limited live flow: it saturates the path only during the join
    // burst, so it tends to *under*-estimate the true capacity.
    cookie.max_bw = static_cast<Bandwidth>(
        static_cast<double>(prev.max_bw) * rng.uniform(0.65, 1.0));
    cookie.server_timestamp = prev_time;
    // Extension triple: the loss the previous session experienced.
    cookie.loss_rate = prev.loss_rate * rng.uniform(0.7, 1.3);
    base.cookie = cookie;
  }

  // What a user-group model would predict for this client (§II-C).
  const auto ug = population.group_average_qos(od.group_id());
  core::HxQosRecord ug_qos;
  ug_qos.min_rtt = ug.mean_rtt;
  ug_qos.max_bw = ug.mean_bw;
  ug_qos.server_timestamp = start_time;
  base.ug_qos = ug_qos;

  const bool sampled =
      config.trace_sample > 0 && i % config.trace_sample == 0;
  for (core::Scheme scheme : config.schemes) {
    SessionConfig cfg = base;
    cfg.scheme = scheme;
    cfg.collect_phases = config.collect_metrics;
    if (config.flight_recorder) {
      cfg.recorder = &ws.flight_recorder();
      note_crash_session(i, scheme);
    }
    trace::Tracer qlog_tracer;
    trace::Tracer client_qlog_tracer;
    std::ofstream qlog;
    std::ofstream client_qlog;
    std::optional<obs::QlogStreamWriter> qlog_writer;
    std::optional<obs::QlogStreamWriter> client_qlog_writer;
    if (sampled) {
      // One deterministic *pair* of files per (session, scheme) — the
      // server and client vantage points of the same session, correlated
      // by a shared group_id (obs/trace_join.h joins them).  Workers never
      // share a stream, so sampling is parallel-safe.  The dumps are
      // standard qlog (draft-ietf-quic-qlog written as JSONL, obs/qlog.h).
      std::string name = "session_";
      name += std::to_string(i);
      name += '_';
      name += core::scheme_name(scheme);
      const std::string base_path = config.trace_dir + "/" + name;
      // A sampled session must never be *silently* untraced: name the
      // file, run that vantage untraced, and surface each miss as the
      // trace.open_failed counter (a broken dir counts both vantages).
      const std::string server_path = base_path + ".server.sqlog";
      qlog.open(server_path, std::ios::trunc);
      if (qlog) {
        obs::QlogTraceInfo info;
        info.title = name;
        info.group_id = name;
        qlog_writer.emplace(qlog, info);
        qlog_tracer.stream_to(&*qlog_writer,
                              /*keep_buffer=*/cfg.collect_phases);
        cfg.tracer = &qlog_tracer;
      } else {
        WIRA_WARN("population",
                  "cannot open qlog sample " + server_path +
                      ": server vantage runs untraced");
        rec.trace_open_failures++;
      }
      const std::string client_path = base_path + ".client.sqlog";
      client_qlog.open(client_path, std::ios::trunc);
      if (client_qlog) {
        obs::QlogTraceInfo info;
        info.title = name;
        info.group_id = name;
        info.vantage_point_name = "wira-client";
        info.vantage_point_type = "client";
        client_qlog_writer.emplace(client_qlog, info);
        client_qlog_tracer.stream_to(&*client_qlog_writer,
                                     /*keep_buffer=*/false);
        cfg.client_tracer = &client_qlog_tracer;
      } else {
        WIRA_WARN("population",
                  "cannot open qlog sample " + client_path +
                      ": client vantage runs untraced");
        rec.trace_open_failures++;
      }
    }
    const auto emplaced = rec.results.emplace(scheme, run_session(cfg, ws));
    if (config.flight_recorder) {
      const SessionResult& res = emplaced.first->second;
      const AnomalyTrigger trigger =
          anomaly_trigger(config, ws.flight_recorder(), res);
      if (trigger != AnomalyTrigger::kNone) {
        switch (trigger) {
          case AnomalyTrigger::kStall: rec.anomaly_stall_dumps++; break;
          case AnomalyTrigger::kCornerCase: rec.anomaly_corner_dumps++; break;
          case AnomalyTrigger::kDecodeError: rec.anomaly_decode_dumps++; break;
          case AnomalyTrigger::kFfct: rec.anomaly_ffct_dumps++; break;
          case AnomalyTrigger::kNone: break;
        }
        // File materialization is capped per worker and best-effort; the
        // counters above were already taken, so every execution mode
        // still produces byte-identical records.
        if (!config.anomaly_dir.empty() &&
            ws.anomaly_dumps_written < config.anomaly_max_dumps) {
          std::string name = "session_";
          name += std::to_string(i);
          name += '_';
          name += core::scheme_name(scheme);
          write_anomaly_dump(config, ws.flight_recorder(), name);
          ws.anomaly_dumps_written++;
        }
      }
    }
  }
  if (!rec.results.empty()) {
    rec.ff_size = rec.results.begin()->second.ff_size;
  }
  return rec;
}

// ---- multiprocess sharding (DESIGN.md §6) -------------------------------
//
// The parent forks N workers; worker w owns the contiguous stripe
// [stripe_begin(w), stripe_end(w)) of session indices and streams each
// completed record immediately as a checksummed codec frame, so a crash
// loses only the sessions it never finished.  The parent multiplexes all
// pipes with poll() (a pipe-buffer-bound worker just waits for the parent,
// never deadlocks), reaps every child with waitpid, and classifies each
// worker as clean (kEnd frame seen + exit 0) or dead (signal, nonzero
// exit, truncated or corrupt stream).

struct Stripe {
  size_t begin = 0;
  size_t end = 0;
};

/// Contiguous, balanced stripes: the first (sessions % workers) stripes
/// get one extra index.  Contiguity is what makes "the session the dead
/// worker was on" well-defined — frames arrive in index order per worker.
std::vector<Stripe> make_stripes(size_t sessions, size_t workers) {
  std::vector<Stripe> stripes(workers);
  const size_t base = sessions / workers;
  const size_t extra = sessions % workers;
  size_t at = 0;
  for (size_t w = 0; w < workers; ++w) {
    stripes[w].begin = at;
    at += base + (w < extra ? 1 : 0);
    stripes[w].end = at;
  }
  return stripes;
}

bool write_all(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Worker child body.  Never returns: _Exit skips atexit/stdio teardown
/// inherited from the parent (0 = clean, 1 = session threw, 3 = pipe
/// write failed, i.e. the parent went away).
[[noreturn]] void run_worker_child(const PopulationConfig& config,
                                   size_t worker, Stripe stripe,
                                   bool want_metrics, int fd) {
  int exit_code = 0;
  std::vector<uint8_t> buf;
  append_stream_header(buf);
  obs::MetricsRegistry local;
  try {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace session_ws;
    arm_crash_forensics(config, worker, &session_ws.flight_recorder());
    std::vector<uint8_t> payload;
    for (size_t i = stripe.begin; i < stripe.end; ++i) {
      if (i == config.kill_at_index) {
        (void)write_all(fd, buf.data(), buf.size());  // flush pre-kill
        std::raise(SIGKILL);
      }
      const SessionRecord rec =
          run_one_session(config, population, i, session_ws);
      if (want_metrics) {
        record_session_metrics(local, rec, config.collect_metrics);
      }
      payload.clear();
      CodecWriter w(payload);
      w.u64(i);
      encode_session_record(rec, w);
      append_frame(FrameType::kSessionRecord, payload, buf);
      // Stream eagerly: everything written is salvage if we die later.
      if (!write_all(fd, buf.data(), buf.size())) {
        exit_code = 3;
        break;
      }
      buf.clear();
      // Post-completion crash injection: the record above is already
      // salvage and the recorder rings still hold the whole session, so
      // the signal handler's dump is complete and joinable.
      if (i == config.crash_after_index) {
        std::raise(config.crash_after_signal);
      }
    }
    if (exit_code == 0) {
      buf.clear();
      if (want_metrics) {
        payload.clear();
        CodecWriter w(payload);
        encode_metrics_registry(local, w);
        append_frame(FrameType::kMetrics, payload, buf);
      }
      append_frame(FrameType::kEnd, {}, buf);
      if (!write_all(fd, buf.data(), buf.size())) exit_code = 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wira population worker [%zu,%zu): %s\n",
                 stripe.begin, stripe.end, e.what());
    exit_code = 1;
  } catch (...) {
    exit_code = 1;
  }
  ::close(fd);
  std::_Exit(exit_code);
}

/// Decodes one worker's byte stream into `records` (bounds- and
/// duplicate-checked against its stripe).  Returns true iff the stream is
/// complete and clean; otherwise *reason describes the defect.
bool parse_worker_stream(std::span<const uint8_t> bytes, Stripe stripe,
                         std::vector<SessionRecord>& records,
                         std::vector<uint8_t>& have,
                         obs::MetricsRegistry* worker_metrics,
                         std::string* reason) {
  size_t off = 0;
  switch (read_stream_header(bytes, &off)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kNeedMore:
      *reason = "truncated record stream (no header)";
      return false;
    case FrameStatus::kCorrupt:
      *reason = "bad codec magic/version";
      return false;
  }
  bool saw_metrics = false;
  for (;;) {
    FrameView frame;
    switch (next_frame(bytes, &off, &frame)) {
      case FrameStatus::kNeedMore:
        *reason = off >= bytes.size()
                      ? "truncated record stream (no end marker)"
                      : "truncated frame";
        return false;
      case FrameStatus::kCorrupt:
        *reason = "corrupt frame (checksum or type)";
        return false;
      case FrameStatus::kOk:
        break;
    }
    if (frame.type == FrameType::kEnd) {
      if (off != bytes.size()) {
        *reason = "trailing bytes after end marker";
        return false;
      }
      return true;
    }
    if (frame.type == FrameType::kSessionRecord) {
      CodecReader r(frame.payload);
      uint64_t index = 0;
      SessionRecord rec;
      if (!r.u64(&index) || !decode_session_record(r, &rec) ||
          r.remaining() != 0) {
        *reason = "undecodable session record";
        return false;
      }
      if (index < stripe.begin || index >= stripe.end || have[index]) {
        *reason = "session index outside stripe or duplicated";
        return false;
      }
      records[index] = std::move(rec);
      have[index] = 1;
      continue;
    }
    // kMetrics
    if (worker_metrics == nullptr || saw_metrics) {
      *reason = "unexpected metrics frame";
      return false;
    }
    CodecReader r(frame.payload);
    if (!decode_metrics_registry(r, worker_metrics) || r.remaining() != 0) {
      *reason = "undecodable metrics registry";
      return false;
    }
    saw_metrics = true;
  }
}

std::vector<SessionRecord> run_population_multiprocess(
    const PopulationConfig& config, obs::MetricsRegistry* metrics,
    size_t workers) {
  const std::vector<Stripe> stripes = make_stripes(config.sessions, workers);

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::vector<uint8_t> bytes;
    int status = 0;
  };
  std::vector<Worker> ws(workers);
  for (size_t w = 0; w < workers; ++w) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      for (size_t k = 0; k < w; ++k) {
        ::close(ws[k].fd);
        ::kill(ws[k].pid, SIGKILL);
        ::waitpid(ws[k].pid, nullptr, 0);
      }
      throw std::runtime_error("run_population: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      for (size_t k = 0; k < w; ++k) {
        ::close(ws[k].fd);
        ::kill(ws[k].pid, SIGKILL);
        ::waitpid(ws[k].pid, nullptr, 0);
      }
      throw std::runtime_error("run_population: fork() failed");
    }
    if (pid == 0) {
      // Child: drop every parent-side read end so sibling EOFs work.
      for (size_t k = 0; k < w; ++k) ::close(ws[k].fd);
      ::close(fds[0]);
      run_worker_child(config, w, stripes[w], metrics != nullptr, fds[1]);
    }
    ::close(fds[1]);
    ws[w].pid = pid;
    ws[w].fd = fds[0];
  }

  // Multiplexed drain: read every pipe until EOF.  poll() keeps all
  // workers flowing even when one stripe's records outrun the 64 KiB pipe
  // buffer — the blocked worker resumes as soon as we drain it here.
  size_t open_fds = workers;
  std::vector<pollfd> pfds;
  std::vector<size_t> pfd_worker;
  uint8_t chunk[65536];
  while (open_fds > 0) {
    pfds.clear();
    pfd_worker.clear();
    for (size_t w = 0; w < workers; ++w) {
      if (ws[w].fd < 0) continue;
      pfds.push_back(pollfd{ws[w].fd, POLLIN, 0});
      pfd_worker.push_back(w);
    }
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("run_population: poll() failed");
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& worker = ws[pfd_worker[p]];
      const ssize_t n = ::read(worker.fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(worker.fd);
        worker.fd = -1;
        open_fds--;
        continue;
      }
      if (n == 0) {
        ::close(worker.fd);
        worker.fd = -1;
        open_fds--;
        continue;
      }
      worker.bytes.insert(worker.bytes.end(), chunk, chunk + n);
    }
  }
  for (Worker& worker : ws) {
    while (::waitpid(worker.pid, &worker.status, 0) < 0 && errno == EINTR) {
    }
  }

  // Reassemble index-addressed, then classify each worker.
  std::vector<SessionRecord> records(config.sessions);
  std::vector<uint8_t> have(config.sessions, 0);
  std::vector<obs::MetricsRegistry> worker_metrics(metrics ? workers : 0);
  std::vector<ShardDeath> deaths;
  for (size_t w = 0; w < workers; ++w) {
    std::string parse_reason;
    const bool clean = parse_worker_stream(
        ws[w].bytes, stripes[w], records, have,
        metrics ? &worker_metrics[w] : nullptr, &parse_reason);
    std::string reason;
    if (WIFSIGNALED(ws[w].status)) {
      reason = "killed by signal " + std::to_string(WTERMSIG(ws[w].status));
    } else if (WIFEXITED(ws[w].status) && WEXITSTATUS(ws[w].status) != 0) {
      reason =
          "exited with status " + std::to_string(WEXITSTATUS(ws[w].status));
    } else if (!clean) {
      reason = parse_reason;
    }
    if (reason.empty()) continue;
    ShardDeath death;
    death.worker = static_cast<int>(w);
    death.stripe_begin = stripes[w].begin;
    death.stripe_end = stripes[w].end;
    death.died_at = stripes[w].end;
    for (size_t i = stripes[w].begin; i < stripes[w].end; ++i) {
      if (!have[i]) {
        death.died_at = i;
        break;
      }
    }
    death.reason = std::move(reason);
    deaths.push_back(std::move(death));
  }

  // Crash forensics before any throw: a signal-killed worker's raw ring
  // dump becomes a joinable sqlog pair whether or not we retry.
  materialize_crash_dumps(config, workers, metrics);

  if (!deaths.empty()) {
    std::vector<size_t> missing;
    for (size_t i = 0; i < config.sessions; ++i) {
      if (!have[i]) missing.push_back(i);
    }
    std::string msg = "run_population: ";
    for (size_t d = 0; d < deaths.size(); ++d) {
      if (d > 0) msg += "; ";
      msg += "worker " + std::to_string(deaths[d].worker) + " (sessions [" +
             std::to_string(deaths[d].stripe_begin) + "," +
             std::to_string(deaths[d].stripe_end) + ")) " +
             deaths[d].reason + " while on session " +
             std::to_string(deaths[d].died_at);
    }
    msg += "; salvaged " + std::to_string(config.sessions - missing.size()) +
           " of " + std::to_string(config.sessions) + " records";
    if (!config.retry_dead_shards) {
      throw PopulationShardError(msg, std::move(deaths), std::move(records),
                                 std::move(missing));
    }
    WIRA_WARN("population",
              msg + "; retrying " + std::to_string(missing.size()) +
                  " missing session(s) in-process");
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace retry_ws;
    for (const size_t i : missing) {
      records[i] = run_one_session(config, population, i, retry_ws);
      have[i] = 1;
    }
    if (metrics) {
      // A dead worker's registry never arrived (the metrics frame trails
      // the stripe).  record_session_metrics is a pure function of the
      // record, so rebuilding the whole stripe from the reassembled
      // records reproduces it exactly.
      for (const ShardDeath& death : deaths) {
        obs::MetricsRegistry rebuilt;
        for (size_t i = death.stripe_begin; i < death.stripe_end; ++i) {
          record_session_metrics(rebuilt, records[i], config.collect_metrics);
        }
        worker_metrics[static_cast<size_t>(death.worker)] =
            std::move(rebuilt);
      }
    }
  }

  if (metrics) {
    for (const obs::MetricsRegistry& local : worker_metrics) {
      metrics->merge(local);
    }
  }
  return records;
}

// ---- streaming sink paths (DESIGN.md §6 memory model) -------------------

/// Serializes sink delivery for the threaded sweep: sessions complete in
/// scheduling order, but the sink contract is strict index order.  A
/// worker finishing index i parks until i fits the bounded reorder window
/// [next, next + cap), so at most `cap` completed records are ever
/// buffered no matter how far a fast worker runs ahead.  Deadlock-free:
/// the worker holding index == next always fits the window (cap >= 1),
/// delivers, and advances it, which unparks the others.
class OrderedFlusher {
 public:
  OrderedFlusher(RecordSink& sink, size_t cap)
      : sink_(sink), cap_(cap < 1 ? 1 : cap) {}

  void push(size_t index, SessionRecord&& rec) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return aborted_ || index < next_ + cap_; });
    if (aborted_) return;
    pending_.emplace(index, std::move(rec));
    bool advanced = false;
    while (!pending_.empty() && pending_.begin()->first == next_) {
      SessionRecord out = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      try {
        // Sink call under the lock: the sink contract serializes
        // on_record anyway, and delivery (a metrics fold or a vector
        // push) is cheap next to the session that produced the record.
        sink_.on_record(next_, std::move(out));
      } catch (...) {
        aborted_ = true;
        cv_.notify_all();
        throw;
      }
      ++next_;
      advanced = true;
    }
    if (advanced) cv_.notify_all();
  }

  /// Releases every parked worker after a failure; records still pending
  /// are dropped (the sweep is about to rethrow).
  void abort() {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  RecordSink& sink_;
  const size_t cap_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<size_t, SessionRecord> pending_;  ///< completed, not yet next_
  size_t next_ = 0;
  bool aborted_ = false;
};

/// Serial and threaded sweeps against a sink.  The vector overload routes
/// through this with a CollectSink, so collect mode and streaming mode
/// cannot drift apart.
void run_population_streamed(const PopulationConfig& config,
                             obs::MetricsRegistry* metrics,
                             RecordSink& sink) {
  const size_t threads =
      util::ThreadPool::clamp_threads(config.threads, config.sessions);
  if (threads <= 1) {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace session_ws;
    for (size_t i = 0; i < config.sessions; ++i) {
      SessionRecord rec = run_one_session(config, population, i, session_ws);
      if (metrics) {
        record_session_metrics(*metrics, rec, config.collect_metrics);
      }
      sink.on_record(i, std::move(rec));
    }
    sink.on_complete(config.sessions);
    return;
  }

  // Parallel sweep: workers pull session indices from a shared counter, so
  // scheduling order never affects the output; the OrderedFlusher puts
  // records back into index order before the sink sees them.  Each worker
  // owns its Population, SessionWorkspace and (when metrics are on) a
  // private registry merged after the join — the merge is commutative, so
  // which worker ran which session cannot leak into the aggregate.
  std::vector<obs::MetricsRegistry> worker_metrics(metrics ? threads : 0);
  OrderedFlusher flusher(sink, std::max<size_t>(2 * threads, 8));
  std::atomic<size_t> next{0};
  util::ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    obs::MetricsRegistry* local = metrics ? &worker_metrics[w] : nullptr;
    futures.push_back(pool.submit([&config, &flusher, &next, local] {
      popgen::Population population(config.seed * 31 + 7, config.num_groups);
      SessionWorkspace session_ws;
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= config.sessions) return;
        try {
          SessionRecord rec = run_one_session(config, population, i,
                                              session_ws);
          if (local) {
            record_session_metrics(*local, rec, config.collect_metrics);
          }
          flusher.push(i, std::move(rec));
        } catch (...) {
          // Park the shared counter at the end so the other workers stop
          // claiming new sessions, and unblock anyone waiting on the
          // reorder window — without both, one failure would leave the
          // sweep running (or parked) before the rethrow surfaced it.
          next.store(config.sessions, std::memory_order_relaxed);
          flusher.abort();
          throw;
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (metrics) {
    for (const obs::MetricsRegistry& local : worker_metrics) {
      metrics->merge(local);
    }
  }
  sink.on_complete(config.sessions);
}

// ---- streaming multiprocess (round-robin stripes) -----------------------
//
// The sink contract wants records in global index order, but a contiguous
// stripe layout would force the parent to buffer almost a whole stripe
// before worker 0's last record arrives.  The streaming path therefore
// deals indices round-robin — worker w owns every index with
// i % workers == w, produced in increasing order — so the parent's flush
// cursor only ever waits on the one worker that owns `next`, and the
// reorder buffer is bounded at kStreamReadyCap records per worker.
// Backpressure closes the loop: the parent stops reading a worker whose
// decoded-record queue is full, the pipe fills, and the worker blocks in
// write() until the cursor comes around.

/// Worker child body for the streaming path.  Identical wire format to
/// run_worker_child minus the metrics frame — the parent folds metrics
/// per flushed record instead, which is the same fold by construction.
[[noreturn]] void run_stream_worker_child(const PopulationConfig& config,
                                          size_t worker, size_t workers,
                                          int fd) {
  int exit_code = 0;
  std::vector<uint8_t> buf;
  append_stream_header(buf);
  try {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace session_ws;
    arm_crash_forensics(config, worker, &session_ws.flight_recorder());
    std::vector<uint8_t> payload;
    for (size_t i = worker; i < config.sessions; i += workers) {
      if (i == config.kill_at_index) {
        (void)write_all(fd, buf.data(), buf.size());  // flush pre-kill
        std::raise(SIGKILL);
      }
      const SessionRecord rec =
          run_one_session(config, population, i, session_ws);
      payload.clear();
      CodecWriter w(payload);
      w.u64(i);
      encode_session_record(rec, w);
      append_frame(FrameType::kSessionRecord, payload, buf);
      if (!write_all(fd, buf.data(), buf.size())) {
        exit_code = 3;
        break;
      }
      buf.clear();
      // See run_worker_child: complete-session crash injection.
      if (i == config.crash_after_index) {
        std::raise(config.crash_after_signal);
      }
    }
    if (exit_code == 0) {
      buf.clear();
      append_frame(FrameType::kEnd, {}, buf);
      if (!write_all(fd, buf.data(), buf.size())) exit_code = 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wira population stream worker %zu/%zu: %s\n",
                 worker, workers, e.what());
    exit_code = 1;
  } catch (...) {
    exit_code = 1;
  }
  ::close(fd);
  std::_Exit(exit_code);
}

/// Per-worker decoded-queue cap for the streaming parent: bounds parent
/// memory at workers * cap records (plus one pipe buffer per worker).
constexpr size_t kStreamReadyCap = 8;

struct StreamWorker {
  pid_t pid = -1;
  int fd = -1;  ///< parent-side read end; -1 once EOF/closed
  std::vector<uint8_t> buf;  ///< undecoded bytes (compacted after parse)
  size_t off = 0;
  bool header_ok = false;
  bool end_seen = false;
  bool eof = false;
  bool retired = false;  ///< declared dead; its sessions re-run in-process
  std::string defect;    ///< first stream defect, empty = clean so far
  /// Decoded records awaiting the flush cursor, in index order.
  std::deque<std::pair<size_t, SessionRecord>> ready;
  size_t produced = 0;  ///< records decoded off this worker so far
  int status = 0;
  bool reaped = false;
};

/// Incremental frame decode of whatever bytes have arrived.  Unlike the
/// batch parse_worker_stream this runs mid-stream, so kNeedMore just
/// waits; defects latch (a corrupt stream never un-corrupts).  Stripe
/// validation is exact: worker w's n-th record must be index
/// w + n * workers.
void parse_stream_worker(StreamWorker& w, size_t worker, size_t workers,
                         size_t sessions) {
  if (!w.defect.empty()) return;
  std::span<const uint8_t> bytes(w.buf);
  if (!w.header_ok) {
    switch (read_stream_header(bytes, &w.off)) {
      case FrameStatus::kOk:
        w.header_ok = true;
        break;
      case FrameStatus::kNeedMore:
        return;
      case FrameStatus::kCorrupt:
        w.defect = "bad codec magic/version";
        return;
    }
  }
  while (w.defect.empty()) {
    if (w.end_seen) {
      if (w.off != w.buf.size()) w.defect = "trailing bytes after end marker";
      break;
    }
    FrameView frame;
    const FrameStatus st = next_frame(bytes, &w.off, &frame);
    if (st == FrameStatus::kNeedMore) break;
    if (st == FrameStatus::kCorrupt) {
      w.defect = "corrupt frame (checksum or type)";
      break;
    }
    if (frame.type == FrameType::kEnd) {
      w.end_seen = true;
      continue;
    }
    if (frame.type != FrameType::kSessionRecord) {
      w.defect = "unexpected metrics frame";
      break;
    }
    CodecReader r(frame.payload);
    uint64_t index = 0;
    SessionRecord rec;
    if (!r.u64(&index) || !decode_session_record(r, &rec) ||
        r.remaining() != 0) {
      w.defect = "undecodable session record";
      break;
    }
    const size_t expected = worker + w.produced * workers;
    if (index >= sessions || index != expected) {
      w.defect = "session index out of stripe order";
      break;
    }
    w.produced++;
    w.ready.emplace_back(static_cast<size_t>(index), std::move(rec));
  }
  // Drop the consumed prefix so the buffer stays O(one frame) instead of
  // accumulating the worker's whole stream.
  if (w.off > 0) {
    w.buf.erase(w.buf.begin(),
                w.buf.begin() + static_cast<ptrdiff_t>(w.off));
    w.off = 0;
  }
}

void run_population_multiprocess_stream(const PopulationConfig& config,
                                        obs::MetricsRegistry* metrics,
                                        RecordSink& sink, size_t workers) {
  std::vector<StreamWorker> ws(workers);
  for (size_t w = 0; w < workers; ++w) {
    int fds[2] = {-1, -1};
    const bool pipe_ok = ::pipe(fds) == 0;
    const pid_t pid = pipe_ok ? ::fork() : -1;
    if (!pipe_ok || pid < 0) {
      if (pipe_ok) {
        ::close(fds[0]);
        ::close(fds[1]);
      }
      for (size_t k = 0; k < w; ++k) {
        ::close(ws[k].fd);
        ::kill(ws[k].pid, SIGKILL);
        ::waitpid(ws[k].pid, nullptr, 0);
      }
      throw std::runtime_error(pipe_ok
                                   ? "run_population: fork() failed"
                                   : "run_population: pipe() failed");
    }
    if (pid == 0) {
      // Child: drop every parent-side read end so sibling EOFs work.
      for (size_t k = 0; k < w; ++k) ::close(ws[k].fd);
      ::close(fds[0]);
      run_stream_worker_child(config, w, workers, fds[1]);
    }
    ::close(fds[1]);
    ws[w].pid = pid;
    ws[w].fd = fds[0];
  }

  auto reap = [](StreamWorker& w) {
    if (w.pid <= 0 || w.reaped) return;
    while (::waitpid(w.pid, &w.status, 0) < 0 && errno == EINTR) {
    }
    w.reaped = true;
  };
  auto kill_and_reap_all = [&] {
    for (StreamWorker& w : ws) {
      if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
      }
      // Harmless on an already-exited child: the zombie's status is
      // unaffected, so classification below still sees the true cause.
      if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
    }
    for (StreamWorker& w : ws) reap(w);
  };
  /// Why the parent will never get worker w's next record.  Order
  /// matters: a latched stream defect beats the exit status (we may have
  /// SIGKILLed a defective-but-alive worker ourselves).
  auto death_reason = [](const StreamWorker& w) -> std::string {
    if (!w.defect.empty()) return w.defect;
    if (w.reaped && WIFSIGNALED(w.status)) {
      return "killed by signal " + std::to_string(WTERMSIG(w.status));
    }
    if (w.reaped && WIFEXITED(w.status) && WEXITSTATUS(w.status) != 0) {
      return "exited with status " + std::to_string(WEXITSTATUS(w.status));
    }
    if (w.end_seen) return "end marker before stripe complete";
    return "truncated record stream";
  };
  auto make_death = [&](size_t widx) {
    ShardDeath death;
    death.worker = static_cast<int>(widx);
    // Round-robin stripe: first owned index / one past the stripe; the
    // stride is `workers`.
    death.stripe_begin = widx;
    death.stripe_end = config.sessions;
    death.died_at = widx + ws[widx].produced * workers;
    death.reason = death_reason(ws[widx]);
    return death;
  };

  size_t next = 0;
  std::optional<popgen::Population> retry_population;
  std::optional<SessionWorkspace> retry_ws;
  std::vector<pollfd> pfds;
  std::vector<size_t> pfd_worker;
  uint8_t chunk[65536];
  auto flush = [&](size_t index, SessionRecord&& rec) {
    if (metrics) record_session_metrics(*metrics, rec, config.collect_metrics);
    sink.on_record(index, std::move(rec));
  };

  while (next < config.sessions) {
    StreamWorker& cur = ws[next % workers];
    if (!cur.ready.empty()) {
      // Stripe-order validation guarantees the front is exactly `next`.
      SessionRecord rec = std::move(cur.ready.front().second);
      cur.ready.pop_front();
      flush(next, std::move(rec));
      ++next;
      continue;
    }
    const bool no_more =
        cur.retired || !cur.defect.empty() || cur.end_seen || cur.eof;
    if (no_more) {
      // Record `next` will never arrive from its worker.
      if (!config.retry_dead_shards) {
        // Snapshot which workers are actually dead before the cleanup
        // SIGKILL makes everyone look signal-killed.
        std::vector<size_t> dead;
        for (size_t w = 0; w < workers; ++w) {
          StreamWorker& sw = ws[w];
          if (!sw.defect.empty() || (sw.eof && !sw.end_seen)) {
            dead.push_back(w);
            if (sw.fd >= 0) {
              ::close(sw.fd);
              sw.fd = -1;
            }
            reap(sw);
          }
        }
        if (dead.empty()) dead.push_back(next % workers);
        std::vector<ShardDeath> deaths;
        deaths.reserve(dead.size());
        for (const size_t w : dead) deaths.push_back(make_death(w));
        kill_and_reap_all();
        std::vector<size_t> missing;
        missing.reserve(config.sessions - next);
        for (size_t i = next; i < config.sessions; ++i) missing.push_back(i);
        std::string msg = "run_population (streaming): ";
        for (size_t d = 0; d < deaths.size(); ++d) {
          if (d > 0) msg += "; ";
          msg += "worker " + std::to_string(deaths[d].worker) +
                 " (round-robin stripe " +
                 std::to_string(deaths[d].stripe_begin) + " mod " +
                 std::to_string(workers) + ") " + deaths[d].reason +
                 " while on session " + std::to_string(deaths[d].died_at);
        }
        msg += "; " + std::to_string(next) + " of " +
               std::to_string(config.sessions) +
               " records already delivered to the sink";
        materialize_crash_dumps(config, workers, metrics);
        throw PopulationShardError(msg, std::move(deaths), {},
                                   std::move(missing));
      }
      if (!cur.retired) {
        const size_t widx = next % workers;
        if (cur.fd >= 0) {
          ::close(cur.fd);
          cur.fd = -1;
        }
        if (cur.pid > 0 && !cur.reaped) ::kill(cur.pid, SIGKILL);
        reap(cur);
        WIRA_WARN("population",
                  "stream worker " + std::to_string(widx) + " " +
                      death_reason(cur) + " while on session " +
                      std::to_string(widx + cur.produced * workers) +
                      "; re-running its remaining sessions in-process");
        cur.retired = true;
      }
      if (!retry_population) {
        retry_population.emplace(config.seed * 31 + 7, config.num_groups);
        retry_ws.emplace();
      }
      SessionRecord rec =
          run_one_session(config, *retry_population, next, *retry_ws);
      flush(next, std::move(rec));
      ++next;
      continue;
    }

    // Need bytes.  Poll every open worker whose decoded queue has room;
    // the cursor's worker always qualifies (its queue is empty), so the
    // set is never empty here.
    pfds.clear();
    pfd_worker.clear();
    for (size_t w = 0; w < workers; ++w) {
      if (ws[w].fd < 0 || ws[w].ready.size() >= kStreamReadyCap) continue;
      pfds.push_back(pollfd{ws[w].fd, POLLIN, 0});
      pfd_worker.push_back(w);
    }
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      kill_and_reap_all();
      throw std::runtime_error("run_population: poll() failed");
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      StreamWorker& w = ws[pfd_worker[p]];
      const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(w.fd);
        w.fd = -1;
        w.eof = true;
        continue;
      }
      w.buf.insert(w.buf.end(), chunk, chunk + n);
      parse_stream_worker(w, pfd_worker[p], workers, config.sessions);
    }
  }

  // Every record is delivered; drain the remaining pipes to their end
  // markers and verify each worker also *exited* cleanly, mirroring the
  // vector path's classification.
  for (size_t w = 0; w < workers; ++w) {
    StreamWorker& sw = ws[w];
    while (sw.fd >= 0) {
      const ssize_t n = ::read(sw.fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(sw.fd);
        sw.fd = -1;
        sw.eof = true;
        break;
      }
      sw.buf.insert(sw.buf.end(), chunk, chunk + n);
      parse_stream_worker(sw, w, workers, config.sessions);
    }
    reap(sw);
  }
  std::vector<ShardDeath> deaths;
  for (size_t w = 0; w < workers; ++w) {
    const StreamWorker& sw = ws[w];
    if (sw.retired) continue;  // already replaced and warned above
    const bool dirty_exit =
        WIFSIGNALED(sw.status) ||
        (WIFEXITED(sw.status) && WEXITSTATUS(sw.status) != 0);
    if (sw.defect.empty() && sw.end_seen && !dirty_exit) continue;
    deaths.push_back(make_death(w));
  }
  materialize_crash_dumps(config, workers, metrics);
  if (!deaths.empty()) {
    std::string msg = "run_population (streaming): ";
    for (size_t d = 0; d < deaths.size(); ++d) {
      if (d > 0) msg += "; ";
      msg += "worker " + std::to_string(deaths[d].worker) + " " +
             deaths[d].reason + " after delivering its full stripe";
    }
    if (!config.retry_dead_shards) {
      throw PopulationShardError(msg, std::move(deaths), {}, {});
    }
    WIRA_WARN("population", msg + "; all records were delivered");
  }
  sink.on_complete(config.sessions);
}

/// Shared sweep prologue: materialize the qlog sample directory.
/// Non-fatal on purpose — a broken trace destination degrades to untraced
/// sessions (warned + counted per open), never a dead sweep.  A relative
/// trace_dir (the "traces" default) silently lands wherever the process
/// happens to run, so name the absolute directory actually written to.
void prepare_trace_dir(const PopulationConfig& config) {
  if (config.trace_sample == 0) return;
  std::error_code ec;
  std::filesystem::create_directories(config.trace_dir, ec);
  if (ec) {
    WIRA_WARN("population", "cannot create trace dir " + config.trace_dir +
                                ": " + ec.message());
    return;
  }
  const std::filesystem::path dir(config.trace_dir);
  if (dir.is_relative()) {
    std::error_code abs_ec;
    const std::filesystem::path abs = std::filesystem::absolute(dir, abs_ec);
    WIRA_WARN("population",
              "trace_dir \"" + config.trace_dir +
                  "\" is relative; qlog samples will be written to " +
                  (abs_ec ? dir.string() : abs.string()));
  }
}

/// Same contract for the anomaly-dump directory (created in the parent so
/// forked worker children can pre-open crash files immediately).
void prepare_anomaly_dir(const PopulationConfig& config) {
  if (!config.flight_recorder || config.anomaly_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(config.anomaly_dir, ec);
  if (ec) {
    WIRA_WARN("population", "cannot create anomaly dir " +
                                config.anomaly_dir + ": " + ec.message() +
                                "; anomaly dumps will be dropped");
  }
}

}  // namespace

std::vector<SessionRecord> run_population(const PopulationConfig& config,
                                          obs::MetricsRegistry* metrics) {
  prepare_trace_dir(config);
  prepare_anomaly_dir(config);
  const size_t processes =
      util::ThreadPool::clamp_threads(config.processes, config.sessions);
  if (processes > 1) {
    // The vector multiprocess path keeps its contiguous-stripe layout:
    // index-addressed reassembly doesn't care about arrival order, and
    // contiguity is what gives PopulationShardError its salvage contract.
    return run_population_multiprocess(config, metrics, processes);
  }
  CollectSink sink(config.sessions);
  run_population_streamed(config, metrics, sink);
  return sink.take();
}

void run_population(const PopulationConfig& config,
                    obs::MetricsRegistry* metrics, RecordSink& sink) {
  prepare_trace_dir(config);
  prepare_anomaly_dir(config);
  const size_t processes =
      util::ThreadPool::clamp_threads(config.processes, config.sessions);
  if (processes > 1) {
    run_population_multiprocess_stream(config, metrics, sink, processes);
    return;
  }
  run_population_streamed(config, metrics, sink);
}

}  // namespace wira::exp
