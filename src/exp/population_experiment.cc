#include "exp/population_experiment.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "exp/population_internal.h"
#include "exp/record_sink.h"
#include "exp/shard_dispatch.h"
#include "media/stream_source.h"
#include "obs/qlog.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace wira::exp {

namespace {

std::string metric_name(const char* prefix, core::Scheme scheme) {
  std::string name(prefix);
  name += '.';
  name += core::scheme_name(scheme);
  return name;
}

}  // namespace

void record_session_metrics(obs::MetricsRegistry& m, const SessionRecord& rec,
                            bool include_phases) {
  for (const auto& [scheme, res] : rec.results) {
    m.inc(metric_name("sessions", scheme));
    if (!res.first_frame_completed) {
      m.inc(metric_name("first_frame_incomplete", scheme));
    } else {
      m.histogram(metric_name("ffct_us", scheme))
          .record(static_cast<uint64_t>(res.ffct / 1000));
      m.histogram(metric_name("fflr_ppm", scheme))
          .record(static_cast<uint64_t>(res.fflr * 1e6));
    }
    if (res.zero_rtt) m.inc(metric_name("zero_rtt", scheme));
    if (res.cwnd_fallback) {
      m.inc(metric_name("corner.cwnd_before_parse", scheme));
    }
    if (res.init.hx_stale) m.inc(metric_name("corner.stale_cookie", scheme));
    if (res.zero_rtt_rejected) {
      m.inc(metric_name("corner.zero_rtt_reject", scheme));
    }
    m.inc(metric_name("pto_fired", scheme), res.server_stats.ptos_fired);
    m.inc(metric_name("packets_sent", scheme),
          res.server_stats.packets_sent);
    m.inc(metric_name("packets_lost", scheme),
          res.server_stats.packets_lost);
    m.inc(metric_name("cookies_synced", scheme), res.cookies_synced);
    if (include_phases) {
      for (const obs::PhaseSpan& span : res.phases) {
        std::string name = "phase.";
        name += span.name;
        name += "_us.";
        name += core::scheme_name(scheme);
        m.histogram(name).record(
            static_cast<uint64_t>(span.duration() / 1000));
      }
    }
  }
  // Folded from the record (not counted at the failing open) so serial,
  // threaded, multiprocess and salvage-retry runs all agree exactly.
  if (rec.trace_open_failures > 0) {
    m.inc("trace.open_failed", rec.trace_open_failures);
  }
  // Flight-recorder anomaly triggers, by trigger kind (exported by
  // wira_exporterd as wira_anomaly_dumps_total{trigger=...}).
  if (rec.anomaly_stall_dumps > 0) {
    m.inc("anomaly.dumps.stall", rec.anomaly_stall_dumps);
  }
  if (rec.anomaly_corner_dumps > 0) {
    m.inc("anomaly.dumps.corner_case", rec.anomaly_corner_dumps);
  }
  if (rec.anomaly_decode_dumps > 0) {
    m.inc("anomaly.dumps.decode_error", rec.anomaly_decode_dumps);
  }
  if (rec.anomaly_ffct_dumps > 0) {
    m.inc("anomaly.dumps.ffct", rec.anomaly_ffct_dumps);
  }
}

namespace {

// ---- flight-recorder anomaly path (DESIGN.md §7) ------------------------

enum class AnomalyTrigger { kNone, kStall, kCornerCase, kDecodeError, kFfct };

/// The anomaly trigger (if any) for one completed (session, scheme) run:
/// the highest-priority condition wins, so each run yields at most one
/// dump with an unambiguous label.  Pure function of the session — every
/// execution mode (serial / threads / procs / salvage-retry) computes the
/// same triggers, which is what keeps records byte-identical.
AnomalyTrigger anomaly_trigger(const PopulationConfig& config,
                               const obs::FlightRecorder& fr,
                               const SessionResult& res) {
  if (fr.count(trace::EventType::kStallObserved) > 0) {
    return AnomalyTrigger::kStall;
  }
  if (res.cwnd_fallback || res.init.hx_stale || res.zero_rtt_rejected ||
      fr.count(trace::EventType::kCornerCase) > 0) {
    return AnomalyTrigger::kCornerCase;
  }
  if (res.server_stats.packets_undecodable > 0 ||
      fr.count(trace::EventType::kDecodeError) > 0) {
    return AnomalyTrigger::kDecodeError;
  }
  if (config.anomaly_ffct != kNoTime &&
      (!res.first_frame_completed || res.ffct > config.anomaly_ffct)) {
    return AnomalyTrigger::kFfct;
  }
  return AnomalyTrigger::kNone;
}

/// Materializes the triggering session's rings as a standard paired qlog
/// sample under anomaly_dir — same naming and format as --trace-sample
/// artifacts, so wira_trace_join joins anomaly dumps unchanged.  File
/// I/O failures warn and drop the dump (never the sweep); the trigger
/// counter was already taken, so counters stay deterministic.
void write_anomaly_dump(const PopulationConfig& config,
                        const obs::FlightRecorder& fr,
                        const std::string& name) {
  const std::string base = config.anomaly_dir + "/" + name;
  std::ofstream server_os(base + ".server.sqlog", std::ios::trunc);
  std::ofstream client_os(base + ".client.sqlog", std::ios::trunc);
  if (!server_os || !client_os) {
    WIRA_WARN("population",
              "cannot open anomaly dump " + base + ".{server,client}.sqlog");
    return;
  }
  fr.write_sqlog_pair(server_os, client_os, name);
}

// ---- crash forensics (multiprocess workers, DESIGN.md §7) ---------------
//
// A worker child dying on a fatal signal dumps the in-flight session's
// recorder rings to a pre-opened fd before re-raising, so PR 5's "killed
// by signal N while on session i" diagnosis comes with the victim's event
// history.  Everything the handler touches is async-signal-safe:
// lock-free atomics, raw write(2) via FlightRecorder::crash_dump, no
// allocation, no locks, no stdio.  The globals are per-process state;
// only forked worker children arm the handler, so the parent process
// (and the threaded runner) never take this path.

struct CrashForensics {
  std::atomic<int> fd{-1};  ///< pre-opened dump fd; -1 = disarmed
  std::atomic<const obs::FlightRecorder*> recorder{nullptr};
  std::atomic<uint64_t> session_index{0};
  std::atomic<uint32_t> scheme{0};
};
CrashForensics g_crash;

extern "C" void wira_crash_signal_handler(int sig) {
  const int fd = g_crash.fd.load(std::memory_order_acquire);
  const obs::FlightRecorder* rec =
      g_crash.recorder.load(std::memory_order_acquire);
  if (fd >= 0 && rec != nullptr) {
    (void)rec->crash_dump(
        fd, g_crash.session_index.load(std::memory_order_acquire),
        g_crash.scheme.load(std::memory_order_acquire));
  }
  // Re-raise with the default disposition so the parent's waitpid sees
  // the true terminating signal.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

namespace internal {

/// Arms the fatal-signal dump in a worker (forked pipe child or a
/// wira_workerd serving a connection): pre-opens the raw dump file (the
/// only step that may allocate — it happens before any session runs) and
/// installs the handler for the fatal-by-default signals.
void arm_crash_forensics(const PopulationConfig& config, size_t worker,
                         const obs::FlightRecorder* recorder) {
  // Disarm any previous arming first (wira_workerd re-arms per
  // connection); the stale fd would otherwise leak per sweep.
  const int prev = g_crash.fd.exchange(-1, std::memory_order_acq_rel);
  if (prev >= 0) ::close(prev);
  g_crash.recorder.store(nullptr, std::memory_order_release);
  if (!config.flight_recorder || config.anomaly_dir.empty()) return;
  const std::string path =
      config.anomaly_dir + "/crash_worker_" + std::to_string(worker) + ".bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    WIRA_WARN("population", "cannot pre-open crash dump " + path +
                                "; worker runs without signal forensics");
    return;
  }
  g_crash.recorder.store(recorder, std::memory_order_release);
  g_crash.fd.store(fd, std::memory_order_release);
  struct sigaction sa = {};
  sa.sa_handler = wira_crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace internal

namespace {

/// Tags the recorder state the handler would dump (cheap atomic stores;
/// called per (session, scheme) before the run so a mid-session crash is
/// attributed to the right pair).
void note_crash_session(size_t i, core::Scheme scheme) {
  g_crash.session_index.store(i, std::memory_order_relaxed);
  g_crash.scheme.store(static_cast<uint32_t>(scheme),
                       std::memory_order_release);
}

}  // namespace

namespace internal {

/// Parent side: reads each worker's raw crash-dump file (if its handler
/// wrote one), materializes it as a joinable
/// crash_session_<i>_<scheme>.{server,client}.sqlog pair, counts it as
/// `anomaly.dumps.crash`, and removes the raw file.  Records are never
/// touched, so salvage/retry output stays byte-identical to serial.
void materialize_crash_dumps(const PopulationConfig& config, size_t workers,
                             obs::MetricsRegistry* metrics) {
  if (!config.flight_recorder || config.anomaly_dir.empty()) return;
  for (size_t w = 0; w < workers; ++w) {
    const std::string path =
        config.anomaly_dir + "/crash_worker_" + std::to_string(w) + ".bin";
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) continue;  // worker never armed, or nothing pre-opened
    if (size > 0) {
      std::ifstream in(path, std::ios::binary);
      obs::FlightRecorder::CrashDump dump;
      std::string error;
      if (in && obs::FlightRecorder::read_crash_dump(in, &dump, &error)) {
        std::string name = "crash_session_";
        name += std::to_string(dump.session_index);
        name += '_';
        name += core::scheme_name(static_cast<core::Scheme>(dump.scheme));
        const std::string base = config.anomaly_dir + "/" + name;
        std::ofstream server_os(base + ".server.sqlog", std::ios::trunc);
        std::ofstream client_os(base + ".client.sqlog", std::ios::trunc);
        if (server_os && client_os) {
          obs::QlogTraceInfo sinfo;
          sinfo.title = name;
          sinfo.group_id = name;
          obs::write_events_sqlog(server_os, dump.server_events, sinfo);
          obs::QlogTraceInfo cinfo;
          cinfo.title = name;
          cinfo.group_id = name;
          cinfo.vantage_point_name = "wira-client";
          cinfo.vantage_point_type = "client";
          obs::write_events_sqlog(client_os, dump.client_events, cinfo);
          WIRA_WARN("population", "crash forensics: worker " +
                                      std::to_string(w) + " left " + base +
                                      ".{server,client}.sqlog");
          if (metrics) metrics->inc("anomaly.dumps.crash");
        }
      } else {
        WIRA_WARN("population",
                  "crash forensics: cannot parse " + path + ": " + error);
      }
    }
    std::filesystem::remove(path, ec);
  }
}

/// Simulates session `i` of the population sweep.  All randomness derives
/// from (config.seed, i) and `population` is read-only, so sessions are
/// independent: the parallel runner calls this from worker threads and the
/// result is identical to the serial loop.  `ws` is the caller's recycled
/// session machinery (one per worker): reusing it across sessions is what
/// keeps steady-state heap allocations bounded (DESIGN.md §6).
SessionRecord run_one_session(const PopulationConfig& config,
                              const popgen::Population& population,
                              size_t i, SessionWorkspace& ws) {
  if (i == config.fail_at_index) {
    throw std::runtime_error("injected failure at session " +
                             std::to_string(i));
  }
  if (config.skew_delay_us > 0 && config.sessions > 0) {
    // Skewed-cost injection (perf_smoke / straggler tests): earlier
    // indices cost more, a worst-first ramp.  Wall-clock only — the
    // record itself is untouched, so byte-identity is preserved.
    const uint64_t us =
        config.skew_delay_us * (config.sessions - i) / config.sessions;
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  Rng rng(config.seed ^ (0x5DEECE66Dull * (i + 1)));
  const popgen::OdPair od = population.random_od(rng);

  // Session timeline: the previous session happened `gap` before now;
  // the absolute epoch is randomized for drift-phase diversity.
  const TimeNs gap = popgen::Population::sample_session_gap(rng);
  const TimeNs prev_time = from_seconds(rng.uniform(60.0, 7200.0));
  const TimeNs start_time = prev_time + gap;

  const popgen::PathSample prev = od.sample(prev_time, rng);
  const popgen::PathSample now = od.sample(start_time, rng);

  SessionRecord rec;
  rec.conditions = now;
  rec.cookie_age = gap;
  rec.zero_rtt = rng.chance(config.p_zero_rtt);
  rec.had_cookie = rng.chance(config.p_cookie);

  SessionConfig base;
  base.path = popgen::OdPair::to_path_config(now);
  base.cc_algo = config.cc_algo;
  base.seed = rng.next() | 1;
  base.stream = media::sample_stream_profile(rng, i + 1);
  base.stream.container = config.container;
  base.corpus_seed = config.seed * 1000 + 99;
  base.start_time = start_time;
  base.theta_vf = config.theta_vf;
  base.zero_rtt = rec.zero_rtt;
  base.defaults = config.defaults;
  base.staleness_threshold = config.staleness_threshold;
  base.sync_period = config.sync_period;
  base.careful_resume = config.careful_resume;
  if (rec.had_cookie) {
    core::HxQosRecord cookie;
    cookie.min_rtt = prev.min_rtt;
    // The previous session's MaxBW is BBR's estimate from an
    // app-limited live flow: it saturates the path only during the join
    // burst, so it tends to *under*-estimate the true capacity.
    cookie.max_bw = static_cast<Bandwidth>(
        static_cast<double>(prev.max_bw) * rng.uniform(0.65, 1.0));
    cookie.server_timestamp = prev_time;
    // Extension triple: the loss the previous session experienced.
    cookie.loss_rate = prev.loss_rate * rng.uniform(0.7, 1.3);
    base.cookie = cookie;
  }

  // What a user-group model would predict for this client (§II-C).
  const auto ug = population.group_average_qos(od.group_id());
  core::HxQosRecord ug_qos;
  ug_qos.min_rtt = ug.mean_rtt;
  ug_qos.max_bw = ug.mean_bw;
  ug_qos.server_timestamp = start_time;
  base.ug_qos = ug_qos;

  const bool sampled =
      config.trace_sample > 0 && i % config.trace_sample == 0;
  for (core::Scheme scheme : config.schemes) {
    SessionConfig cfg = base;
    cfg.scheme = scheme;
    cfg.collect_phases = config.collect_metrics;
    if (config.flight_recorder) {
      cfg.recorder = &ws.flight_recorder();
      note_crash_session(i, scheme);
    }
    trace::Tracer qlog_tracer;
    trace::Tracer client_qlog_tracer;
    std::ofstream qlog;
    std::ofstream client_qlog;
    std::optional<obs::QlogStreamWriter> qlog_writer;
    std::optional<obs::QlogStreamWriter> client_qlog_writer;
    if (sampled) {
      // One deterministic *pair* of files per (session, scheme) — the
      // server and client vantage points of the same session, correlated
      // by a shared group_id (obs/trace_join.h joins them).  Workers never
      // share a stream, so sampling is parallel-safe.  The dumps are
      // standard qlog (draft-ietf-quic-qlog written as JSONL, obs/qlog.h).
      std::string name = "session_";
      name += std::to_string(i);
      name += '_';
      name += core::scheme_name(scheme);
      const std::string base_path = config.trace_dir + "/" + name;
      // A sampled session must never be *silently* untraced: name the
      // file, run that vantage untraced, and surface each miss as the
      // trace.open_failed counter (a broken dir counts both vantages).
      const std::string server_path = base_path + ".server.sqlog";
      qlog.open(server_path, std::ios::trunc);
      if (qlog) {
        obs::QlogTraceInfo info;
        info.title = name;
        info.group_id = name;
        qlog_writer.emplace(qlog, info);
        qlog_tracer.stream_to(&*qlog_writer,
                              /*keep_buffer=*/cfg.collect_phases);
        cfg.tracer = &qlog_tracer;
      } else {
        WIRA_WARN("population",
                  "cannot open qlog sample " + server_path +
                      ": server vantage runs untraced");
        rec.trace_open_failures++;
      }
      const std::string client_path = base_path + ".client.sqlog";
      client_qlog.open(client_path, std::ios::trunc);
      if (client_qlog) {
        obs::QlogTraceInfo info;
        info.title = name;
        info.group_id = name;
        info.vantage_point_name = "wira-client";
        info.vantage_point_type = "client";
        client_qlog_writer.emplace(client_qlog, info);
        client_qlog_tracer.stream_to(&*client_qlog_writer,
                                     /*keep_buffer=*/false);
        cfg.client_tracer = &client_qlog_tracer;
      } else {
        WIRA_WARN("population",
                  "cannot open qlog sample " + client_path +
                      ": client vantage runs untraced");
        rec.trace_open_failures++;
      }
    }
    const auto emplaced = rec.results.emplace(scheme, run_session(cfg, ws));
    if (config.flight_recorder) {
      const SessionResult& res = emplaced.first->second;
      const AnomalyTrigger trigger =
          anomaly_trigger(config, ws.flight_recorder(), res);
      if (trigger != AnomalyTrigger::kNone) {
        switch (trigger) {
          case AnomalyTrigger::kStall: rec.anomaly_stall_dumps++; break;
          case AnomalyTrigger::kCornerCase: rec.anomaly_corner_dumps++; break;
          case AnomalyTrigger::kDecodeError: rec.anomaly_decode_dumps++; break;
          case AnomalyTrigger::kFfct: rec.anomaly_ffct_dumps++; break;
          case AnomalyTrigger::kNone: break;
        }
        // File materialization is capped per worker and best-effort; the
        // counters above were already taken, so every execution mode
        // still produces byte-identical records.
        if (!config.anomaly_dir.empty() &&
            ws.anomaly_dumps_written < config.anomaly_max_dumps) {
          std::string name = "session_";
          name += std::to_string(i);
          name += '_';
          name += core::scheme_name(scheme);
          write_anomaly_dump(config, ws.flight_recorder(), name);
          ws.anomaly_dumps_written++;
        }
      }
    }
  }
  if (!rec.results.empty()) {
    rec.ff_size = rec.results.begin()->second.ff_size;
  }
  return rec;
}

bool write_all(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

}  // namespace internal

namespace {

// ---- streaming sink paths (DESIGN.md §6 memory model) -------------------

/// Serializes sink delivery for the threaded sweep: sessions complete in
/// scheduling order, but the sink contract is strict index order.  A
/// worker finishing index i parks until i fits the bounded reorder window
/// [next, next + cap), so at most `cap` completed records are ever
/// buffered no matter how far a fast worker runs ahead.  Deadlock-free:
/// the worker holding index == next always fits the window (cap >= 1),
/// delivers, and advances it, which unparks the others.
class OrderedFlusher {
 public:
  OrderedFlusher(RecordSink& sink, size_t cap)
      : sink_(sink), cap_(cap < 1 ? 1 : cap) {}

  void push(size_t index, SessionRecord&& rec) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return aborted_ || index < next_ + cap_; });
    if (aborted_) return;
    pending_.emplace(index, std::move(rec));
    bool advanced = false;
    while (!pending_.empty() && pending_.begin()->first == next_) {
      SessionRecord out = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      try {
        // Sink call under the lock: the sink contract serializes
        // on_record anyway, and delivery (a metrics fold or a vector
        // push) is cheap next to the session that produced the record.
        sink_.on_record(next_, std::move(out));
      } catch (...) {
        aborted_ = true;
        cv_.notify_all();
        throw;
      }
      ++next_;
      advanced = true;
    }
    if (advanced) cv_.notify_all();
  }

  /// Releases every parked worker after a failure; records still pending
  /// are dropped (the sweep is about to rethrow).
  void abort() {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  RecordSink& sink_;
  const size_t cap_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<size_t, SessionRecord> pending_;  ///< completed, not yet next_
  size_t next_ = 0;
  bool aborted_ = false;
};

/// Serial and threaded sweeps against a sink.  The vector overload routes
/// through this with a CollectSink, so collect mode and streaming mode
/// cannot drift apart.
void run_population_streamed(const PopulationConfig& config,
                             obs::MetricsRegistry* metrics,
                             RecordSink& sink) {
  const size_t threads =
      util::ThreadPool::clamp_threads(config.threads, config.sessions);
  if (threads <= 1) {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace session_ws;
    for (size_t i = 0; i < config.sessions; ++i) {
      SessionRecord rec =
          internal::run_one_session(config, population, i, session_ws);
      if (metrics) {
        record_session_metrics(*metrics, rec, config.collect_metrics);
      }
      sink.on_record(i, std::move(rec));
    }
    sink.on_complete(config.sessions);
    return;
  }

  // Parallel sweep: workers pull session indices from a shared counter, so
  // scheduling order never affects the output; the OrderedFlusher puts
  // records back into index order before the sink sees them.  Each worker
  // owns its Population, SessionWorkspace and (when metrics are on) a
  // private registry merged after the join — the merge is commutative, so
  // which worker ran which session cannot leak into the aggregate.
  std::vector<obs::MetricsRegistry> worker_metrics(metrics ? threads : 0);
  OrderedFlusher flusher(sink, std::max<size_t>(2 * threads, 8));
  std::atomic<size_t> next{0};
  util::ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    obs::MetricsRegistry* local = metrics ? &worker_metrics[w] : nullptr;
    futures.push_back(pool.submit([&config, &flusher, &next, local] {
      popgen::Population population(config.seed * 31 + 7, config.num_groups);
      SessionWorkspace session_ws;
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= config.sessions) return;
        try {
          SessionRecord rec =
              internal::run_one_session(config, population, i, session_ws);
          if (local) {
            record_session_metrics(*local, rec, config.collect_metrics);
          }
          flusher.push(i, std::move(rec));
        } catch (...) {
          // Park the shared counter at the end so the other workers stop
          // claiming new sessions, and unblock anyone waiting on the
          // reorder window — without both, one failure would leave the
          // sweep running (or parked) before the rethrow surfaced it.
          next.store(config.sessions, std::memory_order_relaxed);
          flusher.abort();
          throw;
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (metrics) {
    for (const obs::MetricsRegistry& local : worker_metrics) {
      metrics->merge(local);
    }
  }
  sink.on_complete(config.sessions);
}

}  // namespace

namespace internal {

/// Shared sweep prologue: materialize the qlog sample directory.
/// Non-fatal on purpose — a broken trace destination degrades to untraced
/// sessions (warned + counted per open), never a dead sweep.  A relative
/// trace_dir (the "traces" default) silently lands wherever the process
/// happens to run, so name the absolute directory actually written to.
void prepare_trace_dir(const PopulationConfig& config) {
  if (config.trace_sample == 0) return;
  std::error_code ec;
  std::filesystem::create_directories(config.trace_dir, ec);
  if (ec) {
    WIRA_WARN("population", "cannot create trace dir " + config.trace_dir +
                                ": " + ec.message());
    return;
  }
  const std::filesystem::path dir(config.trace_dir);
  if (dir.is_relative()) {
    std::error_code abs_ec;
    const std::filesystem::path abs = std::filesystem::absolute(dir, abs_ec);
    WIRA_WARN("population",
              "trace_dir \"" + config.trace_dir +
                  "\" is relative; qlog samples will be written to " +
                  (abs_ec ? dir.string() : abs.string()));
  }
}

/// Same contract for the anomaly-dump directory (created in the parent so
/// forked worker children can pre-open crash files immediately).
void prepare_anomaly_dir(const PopulationConfig& config) {
  if (!config.flight_recorder || config.anomaly_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(config.anomaly_dir, ec);
  if (ec) {
    WIRA_WARN("population", "cannot create anomaly dir " +
                                config.anomaly_dir + ": " + ec.message() +
                                "; anomaly dumps will be dropped");
  }
}

}  // namespace internal

std::vector<SessionRecord> run_population(const PopulationConfig& config,
                                          obs::MetricsRegistry* metrics) {
  internal::prepare_trace_dir(config);
  internal::prepare_anomaly_dir(config);
  const size_t processes =
      util::ThreadPool::clamp_threads(config.processes, config.sessions);
  if (!config.workers.empty() || processes > 1) {
    // Shard dispatch (exp/shard_dispatch): pipe workers or TCP workerd
    // endpoints, dynamic chunk scheduling, index-addressed reassembly.
    return dispatch_population_collect(config, metrics);
  }
  CollectSink sink(config.sessions);
  run_population_streamed(config, metrics, sink);
  return sink.take();
}

void run_population(const PopulationConfig& config,
                    obs::MetricsRegistry* metrics, RecordSink& sink) {
  internal::prepare_trace_dir(config);
  internal::prepare_anomaly_dir(config);
  const size_t processes =
      util::ThreadPool::clamp_threads(config.processes, config.sessions);
  if (!config.workers.empty() || processes > 1) {
    dispatch_population_stream(config, metrics, sink);
    return;
  }
  run_population_streamed(config, metrics, sink);
}

}  // namespace wira::exp
