#include "exp/session_export.h"

#include <cinttypes>
#include <cstdio>

#include "util/json.h"

namespace wira::exp {

namespace {

void append_kv(std::string& out, const char* key, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += '"';
  out += key;
  out += "\":";
  out += buf;
}

void append_kv_signed(std::string& out, const char* key, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += '"';
  out += key;
  out += "\":";
  out += buf;
}

void append_kv_double(std::string& out, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += '"';
  out += key;
  out += "\":";
  out += buf;
}

void append_kv_bool(std::string& out, const char* key, bool v) {
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

}  // namespace

void write_records_jsonl(const std::vector<SessionRecord>& records,
                         std::ostream& os, int run) {
  std::string line;
  for (size_t i = 0; i < records.size(); ++i) {
    const SessionRecord& rec = records[i];
    for (const auto& [scheme, res] : rec.results) {
      line.clear();
      line += "{";
      append_kv(line, "run", static_cast<uint64_t>(run));
      line += ',';
      append_kv(line, "session", i);
      line += ",\"scheme\":\"";
      util::append_json_escaped(line, core::scheme_name(scheme));
      line += '"';
      line += ',';
      append_kv_bool(line, "zero_rtt", res.zero_rtt);
      line += ',';
      append_kv_bool(line, "had_cookie", rec.had_cookie);
      line += ',';
      append_kv(line, "cookie_age_ms",
                static_cast<uint64_t>(to_ms(rec.cookie_age)));
      line += ',';
      append_kv_bool(line, "first_frame_completed",
                     res.first_frame_completed);
      line += ',';
      append_kv_signed(line, "ffct_ns", res.ffct);
      line += ',';
      append_kv_double(line, "fflr", res.fflr);
      line += ',';
      append_kv(line, "ff_size", res.ff_size);
      line += ',';
      append_kv(line, "init_cwnd", res.init.init_cwnd);
      line += ',';
      append_kv(line, "init_pacing", res.init.init_pacing);
      line += ',';
      append_kv_bool(line, "cwnd_before_parse", res.cwnd_fallback);
      line += ',';
      append_kv_bool(line, "hx_stale", res.init.hx_stale);
      line += ',';
      append_kv_bool(line, "zero_rtt_rejected", res.zero_rtt_rejected);
      line += ',';
      append_kv(line, "ptos", res.server_stats.ptos_fired);
      line += ",\"phases\":{";
      int64_t phase_sum = 0;
      for (size_t p = 0; p < res.phases.size(); ++p) {
        const obs::PhaseSpan& span = res.phases[p];
        if (p > 0) line += ',';
        line += '"';
        line += span.name;
        line += "_ns\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64, span.duration());
        line += buf;
        phase_sum += span.duration();
      }
      line += "},";
      append_kv_signed(line, "phase_sum_ns", phase_sum);
      line += "}\n";
      os << line;
    }
  }
}

}  // namespace wira::exp
