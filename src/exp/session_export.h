// Per-session JSONL export (--metrics-out): one JSON object per
// (session, scheme) pair, written after the population sweep completes so
// the file content is a pure function of the records — byte-identical at
// any --threads N.  Durations are integer nanoseconds; phase spans sum to
// exactly ffct_ns (see obs::ffct_phases).
#pragma once

#include <ostream>
#include <vector>

#include "exp/population_experiment.h"

namespace wira::exp {

/// Writes every (session, scheme) result as one JSONL line.  Sessions
/// appear in index order, schemes in enum order (the map's order).
/// `run` disambiguates multiple sweeps appended into one file (the
/// ablation binaries call run_population once per sweep point).
void write_records_jsonl(const std::vector<SessionRecord>& records,
                         std::ostream& os, int run = 0);

}  // namespace wira::exp
