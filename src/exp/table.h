// Fixed-width table printer for the figure/table benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.h"

namespace wira::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void print(std::ostream& os) const;
  void print() const;  ///< to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Figure 11 ... ==").
void banner(const std::string& title);

}  // namespace wira::exp
