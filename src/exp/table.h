// Fixed-width table printer for the figure/table benches, plus the shared
// FFCT-phase breakdown table every fig/abl binary appends to its output.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace wira::exp {

struct SessionRecord;
struct SessionResult;

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void print(std::ostream& os) const;
  void print() const;  ///< to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Figure 11 ... ==").
void banner(const std::string& title);

/// One labeled group of sessions for the phase breakdown ("wira" -> its
/// completed SessionResults).  Null pointers and sessions without a phase
/// decomposition are skipped.
using PhaseGroup =
    std::pair<std::string, std::vector<const SessionResult*>>;

/// Per-phase FFCT breakdown: one row per (group, phase) with mean / p50 /
/// p90 / p99 in ms plus the phase's share of the group's mean FFCT.
/// Samples are recorded into obs::LatencyHistogram at microsecond
/// resolution — the same log-bucket quantization the metrics registry
/// exports — so table and BENCH JSON agree.
Table ffct_phase_table(const std::vector<PhaseGroup>& groups);

/// Convenience overload: groups a population run by scheme (in the scheme
/// enum order the records carry).
Table ffct_phase_table(const std::vector<SessionRecord>& records);

}  // namespace wira::exp
