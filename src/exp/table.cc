#include "exp/table.h"

#include <algorithm>
#include <array>
#include <iostream>

#include "exp/population_experiment.h"
#include "obs/metrics.h"
#include "obs/phase_timeline.h"

namespace wira::exp {

void Table::print(std::ostream& os) const {
  // Column count follows the *widest* row, not just the header: rows with
  // trailing extra cells print in full (missing cells render empty).
  size_t columns = headers_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << "  " << c << std::string(widths[i] - c.size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print() const { print(std::cout); }

void banner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

namespace {

std::string ms_cell(double us) { return fmt(us / 1000.0, 2); }

}  // namespace

Table ffct_phase_table(const std::vector<PhaseGroup>& groups) {
  Table t({"scheme", "phase", "mean(ms)", "p50", "p90", "p99", "share",
           "n"});
  for (const auto& [label, results] : groups) {
    std::array<obs::LatencyHistogram, obs::kNumPhases> hists;
    for (const SessionResult* r : results) {
      if (r == nullptr || r->phases.size() != obs::kNumPhases) continue;
      for (size_t p = 0; p < obs::kNumPhases; ++p) {
        hists[p].record(
            static_cast<uint64_t>(r->phases[p].duration() / 1000));
      }
    }
    // Phases partition FFCT exactly, so the sum of phase means is the
    // group's mean FFCT — the share denominator.
    double mean_ffct_us = 0;
    for (const auto& h : hists) mean_ffct_us += h.mean();
    for (size_t p = 0; p < obs::kNumPhases; ++p) {
      const obs::LatencyHistogram& h = hists[p];
      t.row({label, obs::kPhaseNames[p], ms_cell(h.mean()),
             ms_cell(h.percentile(50)), ms_cell(h.percentile(90)),
             ms_cell(h.percentile(99)),
             mean_ffct_us > 0 ? fmt(100.0 * h.mean() / mean_ffct_us) + "%"
                              : "-",
             std::to_string(h.count())});
    }
  }
  return t;
}

Table ffct_phase_table(const std::vector<SessionRecord>& records) {
  std::vector<PhaseGroup> groups;
  for (const SessionRecord& rec : records) {
    for (const auto& [scheme, res] : rec.results) {
      const std::string name = core::scheme_name(scheme);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const PhaseGroup& g) {
                               return g.first == name;
                             });
      if (it == groups.end()) {
        groups.emplace_back(name, std::vector<const SessionResult*>{});
        it = groups.end() - 1;
      }
      it->second.push_back(&res);
    }
  }
  return ffct_phase_table(groups);
}

}  // namespace wira::exp
