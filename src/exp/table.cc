#include "exp/table.h"

#include <algorithm>
#include <iostream>

namespace wira::exp {

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << "  " << c << std::string(widths[i] - c.size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print() const { print(std::cout); }

void banner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace wira::exp
