// Fleet-scale population dispatch (DESIGN.md §6): dynamic chunk
// scheduling over pluggable shard transports.
//
// Scheduling: the parent cuts the session index space [0, sessions) into
// contiguous chunks (PopulationConfig::chunk indices each; 0 = legacy
// static striping, one balanced stripe per worker) and keeps a queue of
// unassigned chunks.  Every worker holds at most two outstanding chunk
// assignments — one in flight, one buffered so the worker never idles
// between chunks — and receives the next queue chunk the moment its
// in-flight chunk completes.  Stragglers therefore stop gating the
// sweep: a slow worker simply pulls fewer chunks.  Reassembly is
// index-addressed and per-session seeding depends only on
// (config.seed, index), so stdout, metrics JSONL, and merged registries
// are byte-identical to serial at any worker count or chunk size.
//
// Transport: a ShardChannel abstracts the parent<->worker byte streams.
//   - pipe (default, config.processes): fork; the child inherits the
//     config, a control pipe carries chunk assignments, a data pipe
//     carries record frames back.  waitpid gives exact death diagnoses
//     ("killed by signal 9", "exited with status 1").
//   - tcp (config.workers = {"host:port", ...}): connect to wira_workerd
//     daemons; one bidirectional socket carries a kConfig frame plus
//     assignments out and record frames back.  No exit status exists, so
//     a dead daemon is diagnosed from its stream state ("truncated
//     record stream", ...).
//
// Both directions speak exp/record_codec frames: control streams are
// [header][kConfig?][kChunkAssign...][kEnd], data streams are
// [header][kSessionRecord...][kEnd] — the same wire format, failure
// taxonomy (PopulationShardError, retry_dead_shards) and salvage
// contract as the PR 5 pipe runner.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exp/population_experiment.h"

namespace wira::exp {

class RecordSink;

/// One contiguous range of session indices the scheduler dispatches as a
/// unit.
struct Chunk {
  size_t begin = 0;
  size_t end = 0;  ///< one past the last index

  size_t size() const { return end - begin; }
};

/// Cuts [0, sessions) into dispatch chunks.  chunk_size > 0: fixed-size
/// chunks (the last one short).  chunk_size == 0: static striping — one
/// balanced contiguous stripe per worker, empties skipped — which under
/// the at-most-two-outstanding scheduler degenerates to exactly the old
/// static assignment (every worker gets its one stripe up front and no
/// re-dispatch ever happens): the A/B baseline for perf_smoke.
std::vector<Chunk> make_chunks(size_t sessions, size_t chunk_size,
                               size_t workers);

/// One parent<->worker byte channel.  The dispatcher only needs: a
/// readable fd for record frames, a control-frame writer, a hard-kill
/// lever for cleanup, and a terminal classification.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Fd the worker's record stream arrives on (poll()-able).
  virtual int data_fd() const = 0;
  /// Closes the parent-side read end (idempotent).
  virtual void close_data() = 0;
  /// Ships control bytes (assignments / end marker).  Failure means the
  /// worker is gone; its death is classified from the data stream.
  virtual bool send_control(const uint8_t* data, size_t n) = 0;
  /// Forcibly terminates the worker (cleanup after a defect).  Harmless
  /// on an already-dead worker.
  virtual void hard_kill() = 0;
  /// Reaps the worker and returns a dirty-exit reason ("killed by signal
  /// 9", "exited with status 3") or "" when the transport has no exit
  /// status (TCP) or the exit was clean.  Call at most once, after EOF.
  virtual std::string finish() = 0;
};

/// Connects to a wira_workerd endpoint ("host:port") with a non-blocking
/// connect bounded by `connect_timeout_ms` (<=0 = no bound).  Throws
/// std::runtime_error only on a malformed endpoint (a config error);
/// resolve/connect failures and timeouts return a dead channel whose
/// data_fd() is -1 and whose finish() names the failure, so the
/// dispatcher's shard-death taxonomy classifies the endpoint and
/// retry_dead_shards can salvage its sessions.
std::unique_ptr<ShardChannel> connect_tcp_worker(const std::string& endpoint,
                                                 int connect_timeout_ms);

/// Shard worker loop, shared by forked pipe children and wira_workerd:
/// reads kChunkAssign/kEnd control frames from control_fd, runs each
/// assigned chunk through the serial session code, and streams one
/// kSessionRecord frame per completed session (plus a final kEnd) to
/// data_fd.  Returns the worker exit code: 0 clean, 1 a session threw,
/// 2 control-protocol violation, 3 data write failed (parent gone).
/// Honors the fault-injection and straggler hooks in `config`.
int run_shard_worker(const PopulationConfig& config, size_t worker,
                     int control_fd, int data_fd);

/// wira_workerd connection handler: reads the control header and the
/// kConfig frame (worker id + PopulationConfig) from `fd`, prepares the
/// trace/anomaly directories, then delegates to run_shard_worker with
/// the socket as both control and data stream.  Returns its exit code
/// (2 on a config/handshake violation).
int serve_shard_worker(int fd);

/// Multi-worker sweep, collect mode: spawns/connects workers (pipes when
/// config.workers is empty, TCP otherwise), dispatches chunks, and
/// returns the index-addressed records.  Metrics (when requested) are
/// folded from the reassembled records in index order — bit-identical to
/// the serial fold by construction.  Throws PopulationShardError on
/// worker death unless config.retry_dead_shards.
std::vector<SessionRecord> dispatch_population_collect(
    const PopulationConfig& config, obs::MetricsRegistry* metrics);

/// Streaming-sink mode: same dispatcher, but records flush to `sink` in
/// strictly increasing index order as soon as the cursor's record
/// arrives, holding O(workers · chunk) records at any instant.  Failure
/// semantics follow the streaming contract: delivered records cannot be
/// recalled, so a no-retry death throws with empty `salvaged`.
void dispatch_population_stream(const PopulationConfig& config,
                                obs::MetricsRegistry* metrics,
                                RecordSink& sink);

}  // namespace wira::exp
