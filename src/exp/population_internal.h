// Internal seams of the population runner, shared between
// population_experiment.cc and the shard dispatcher (exp/shard_dispatch).
// Everything here is an implementation detail: the functions live in
// population_experiment.cc and keep their exact serial semantics — the
// dispatcher reuses them so every execution mode (serial, threads, pipe
// workers, TCP workers, salvage retry) runs the same session code.
#pragma once

#include "exp/population_experiment.h"

namespace wira::obs {
class FlightRecorder;
}

namespace wira::exp::internal {

/// Simulates session `i`.  All randomness derives from (config.seed, i)
/// and `population` is read-only, so any partition of the index space
/// across workers reproduces the serial records bit-exactly.
SessionRecord run_one_session(const PopulationConfig& config,
                              const popgen::Population& population, size_t i,
                              SessionWorkspace& ws);

/// Arms the fatal-signal crash dump in a worker (pipe child or workerd):
/// pre-opens anomaly_dir/crash_worker_<worker>.bin and installs an
/// async-signal-safe handler that dumps the in-flight session's recorder
/// rings before re-raising.
void arm_crash_forensics(const PopulationConfig& config, size_t worker,
                         const obs::FlightRecorder* recorder);

/// Parent side: materializes any crash_worker_<w>.bin left by a dying
/// worker as a joinable crash_session_<i>_<scheme> sqlog pair and counts
/// it as `anomaly.dumps.crash`.
void materialize_crash_dumps(const PopulationConfig& config, size_t workers,
                             obs::MetricsRegistry* metrics);

/// Sweep prologues: materialize the qlog sample / anomaly-dump
/// directories (non-fatal on failure).  TCP workers run these themselves
/// from the shipped config; the local entry points run them once.
void prepare_trace_dir(const PopulationConfig& config);
void prepare_anomaly_dir(const PopulationConfig& config);

/// EINTR-safe full write; false on any other error (EPIPE = peer gone).
bool write_all(int fd, const uint8_t* data, size_t n);

}  // namespace wira::exp::internal
