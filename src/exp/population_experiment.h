// Monte-Carlo population A/B experiment: the laptop-scale stand-in for the
// paper's 6-month production deployment.  Each "session" draws an OD pair
// from the synthetic population, reconstructs its previous session's
// Hx_QoS (the transport cookie), and runs the same workload under every
// comparison scheme (paired design — variance-free scheme deltas).
#pragma once

#include <csignal>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/init_config.h"
#include "exp/session_runner.h"
#include "obs/metrics.h"
#include "popgen/population.h"
#include "util/stats.h"

namespace wira::exp {

/// Sentinel for the test-only fault-injection indices below.
inline constexpr size_t kNoSessionIndex = static_cast<size_t>(-1);

/// Live dispatcher telemetry for the dynamic chunk scheduler (DESIGN.md
/// §6).  Deliberately *not* part of MetricsRegistry: chunk-to-worker
/// placement depends on timing, so folding it into the registry would
/// break the byte-identity invariant.  The parent dispatcher (single
/// threaded) updates it inline; the soak flush hook snapshots it into the
/// flush JSONL, where wira_exporterd turns it into
/// wira_dispatch_chunks_total{worker=...} / wira_dispatch_worker_busy.
struct DispatchStats {
  /// Workers actually forked/connected (empty assignments are skipped, so
  /// this is min(requested workers, number of chunks)).
  size_t workers_spawned = 0;
  /// High-watermark of workers holding an in-flight chunk at once.
  size_t busy_workers = 0;
  /// Per-worker completed chunk count, indexed by worker id.
  std::vector<uint64_t> chunks_completed;
  /// Per-worker completed session count, indexed by worker id.
  std::vector<uint64_t> sessions_completed;
};

struct PopulationConfig {
  uint64_t seed = 1;
  size_t sessions = 300;
  size_t num_groups = 64;
  /// Worker threads for the session sweep: 1 = serial (default),
  /// 0 = one per hardware thread, N = exactly N.  Sessions are seeded per
  /// index, so any thread count produces bit-identical records in
  /// identical order.
  size_t threads = 1;
  /// Worker *processes* for the session sweep (the beyond-one-host shard
  /// unit): 1 = in-process (default; `threads` decides serial vs thread
  /// pool), 0 = one per hardware thread, N = fork exactly N workers.
  /// Workers pull index chunks (see `chunk`) from a shared queue and
  /// stream serialized records back over a pipe (exp/record_codec);
  /// per-index seeding and index-addressed reassembly make the output
  /// byte-identical to serial at any worker count or chunk size.  A
  /// worker that dies (crash, signal, truncated stream) is detected and
  /// named; see retry_dead_shards.  `threads` is ignored when
  /// processes > 1.
  size_t processes = 1;
  /// Sessions per dispatch chunk for the dynamic scheduler.  Workers pull
  /// the next chunk when idle, so one expensive stretch of indices no
  /// longer gates the sweep the way a static stripe did.  0 = legacy
  /// static striping (one balanced contiguous stripe per worker, no
  /// re-dispatch) — kept as the A/B baseline for perf_smoke.
  size_t chunk = 64;
  /// TCP dispatch endpoints ("host:port" each, the --workers flag).  When
  /// non-empty, `processes` is ignored and chunks are dispatched to these
  /// wira_workerd instances over sockets instead of forked children; the
  /// same codec, scheduler, failure taxonomy, and byte-identity contract
  /// apply.
  std::vector<std::string> workers;
  /// Per-endpoint TCP connect budget for `workers` (non-blocking connect
  /// + poll).  An endpoint that cannot be reached inside this budget is a
  /// dead shard — named in the failure taxonomy and salvaged by
  /// retry_dead_shards — instead of hanging the sweep for the kernel's
  /// SYN-retry default (minutes).  Parent-side only: never encoded into
  /// the kConfig frame, so the record stream stays byte-identical.
  int connect_timeout_ms = 5000;
  /// When non-null, the dispatcher keeps this updated with live chunk
  /// placement (soak flush hook reads it).  Not owned.
  DispatchStats* dispatch_stats = nullptr;
  /// When a worker process dies mid-stripe: salvage its completed records
  /// and re-run only the missing indices in the parent (true), or throw a
  /// PopulationShardError carrying the salvage (false, default).
  bool retry_dead_shards = false;
  /// Fraction of connections establishing in 0-RTT (paper: ~90%).
  double p_zero_rtt = 0.90;
  /// Fraction of clients arriving with a stored cookie.
  double p_cookie = 0.93;
  std::vector<core::Scheme> schemes = {
      core::Scheme::kBaseline, core::Scheme::kWiraFF,
      core::Scheme::kWiraHx, core::Scheme::kWira};
  core::ExperiencedDefaults defaults;
  TimeNs staleness_threshold = core::kDefaultStaleness;
  uint32_t theta_vf = 1;
  cc::CcAlgo cc_algo = cc::CcAlgo::kBbrV1;
  TimeNs sync_period = core::kDefaultSyncPeriod;
  bool careful_resume = false;
  media::Container container = media::Container::kFlv;

  // ---- observability (PR 2) ----
  /// Collect per-session FFCT phase decompositions (SessionResult::phases)
  /// and, when a registry is passed to run_population, per-phase latency
  /// histograms.  Off by default: enabling it attaches a tracer to every
  /// session's server connection.
  bool collect_metrics = false;
  /// Dump a standard qlog (draft-ietf-quic-qlog as JSONL, obs/qlog.h) of
  /// every Nth session into trace_dir, one `.sqlog` file per
  /// (session, scheme).  0 = off.
  size_t trace_sample = 0;
  std::string trace_dir = "traces";

  // ---- flight recorder / anomaly forensics (PR 8, DESIGN.md §7) ----
  /// Attach the always-on bounded flight recorder to every session.  The
  /// recorder is POD-backed and recycled per worker, so this costs no
  /// steady-state heap allocations; anomaly triggers (stalls, corner
  /// cases, decode errors, FFCT over anomaly_ffct) are counted into
  /// SessionRecord and — when anomaly_dir is set — materialized as
  /// paired .server.sqlog/.client.sqlog dumps wira_trace_join can join.
  bool flight_recorder = true;
  /// Directory for anomaly/crash dumps; "" = count triggers but write no
  /// files.  In multiprocess mode, worker children also pre-open a raw
  /// crash-dump file here so an async-signal-safe handler can preserve
  /// the dying session's rings (materialized by the parent as
  /// crash_session_<i>_<scheme>.{server,client}.sqlog).
  std::string anomaly_dir;
  /// FFCT above this — or an incomplete first frame — triggers an
  /// anomaly dump.  kNoTime = FFCT trigger off.
  TimeNs anomaly_ffct = kNoTime;
  /// Cap on anomaly dump *files* per worker; trigger counters are never
  /// capped (the soak must not turn a pathological sweep into a disk
  /// sweep).
  size_t anomaly_max_dumps = 32;

  // ---- fault injection (tests only) ----
  /// Throw from inside this session index (any execution mode): exercises
  /// the worker-failure paths without patching the runner.
  size_t fail_at_index = kNoSessionIndex;
  /// raise(SIGKILL) when a forked worker reaches this session index.
  /// Honored only inside multiprocess worker children, so the test
  /// process itself never dies.
  size_t kill_at_index = kNoSessionIndex;
  /// raise(crash_after_signal) after a forked worker *finishes* this
  /// session index (its record already streamed): exercises the
  /// signal-dump forensics path with the recorder rings still holding a
  /// complete, joinable session.  Honored only in worker children.
  size_t crash_after_index = kNoSessionIndex;
  int crash_after_signal = SIGABRT;

  // ---- skew / straggler injection (tests and perf_smoke only) ----
  /// Sleep `skew_delay_us * (sessions - i) / sessions` microseconds at the
  /// top of session i: a deterministic worst-first cost ramp that makes
  /// static stripe 0 the straggler.  Wall-clock only — records and
  /// metrics are untouched, so skewed runs stay byte-identical.  0 = off.
  uint64_t skew_delay_us = 0;
  /// Sleep `straggler_delay_us` before every session run by this worker
  /// id (pipe children and wira_workerd alike): simulates one slow host.
  /// kNoSessionIndex = off.
  size_t straggler_worker = kNoSessionIndex;
  uint64_t straggler_delay_us = 0;
};

struct SessionRecord {
  popgen::PathSample conditions;   ///< ground-truth path at session time
  TimeNs cookie_age = 0;
  bool zero_rtt = false;
  bool had_cookie = false;
  uint64_t ff_size = 0;            ///< ground-truth first-frame size
  /// qlog sample files this session failed to open (unwritable trace_dir);
  /// surfaces as the `trace.open_failed` counter.
  uint64_t trace_open_failures = 0;
  std::map<core::Scheme, SessionResult> results;
  /// Flight-recorder anomaly triggers across this session's scheme runs
  /// (at most one per (session, scheme), labeled by the highest-priority
  /// trigger: stall > corner_case > decode_error > ffct).  Deterministic
  /// functions of the session, so serial/threaded/multiprocess/retry runs
  /// agree bit-exactly; surfaced as `anomaly.dumps.<trigger>` counters.
  uint64_t anomaly_stall_dumps = 0;
  uint64_t anomaly_corner_dumps = 0;
  uint64_t anomaly_decode_dumps = 0;
  uint64_t anomaly_ffct_dumps = 0;
};

/// One dead worker of the multiprocess runner (DESIGN.md §6 failure
/// matrix): which stripe it owned, the first session index it never
/// delivered (the session it was on), and why the parent declared it dead.
struct ShardDeath {
  int worker = -1;
  size_t stripe_begin = 0;  ///< first session index of the stripe
  size_t stripe_end = 0;    ///< one past the last index
  size_t died_at = 0;       ///< first undelivered index of the stripe
  std::string reason;       ///< "killed by signal 9", "exited with status
                            ///< 1", "truncated record stream", ...
};

/// Thrown by run_population (processes > 1, retry_dead_shards off) when
/// one or more workers die.  Carries everything the caller needs to
/// salvage: the index-addressed records that did arrive (missing slots
/// are default-constructed) and the exact indices still owed.
class PopulationShardError : public std::runtime_error {
 public:
  PopulationShardError(const std::string& what,
                       std::vector<ShardDeath> deaths_in,
                       std::vector<SessionRecord> salvaged_in,
                       std::vector<size_t> missing_in)
      : std::runtime_error(what),
        deaths(std::move(deaths_in)),
        salvaged(std::move(salvaged_in)),
        missing(std::move(missing_in)) {}

  std::vector<ShardDeath> deaths;
  std::vector<SessionRecord> salvaged;
  std::vector<size_t> missing;
};

class RecordSink;

/// Folds one session's results into a registry.  Only additive quantities
/// are recorded (counters and histogram buckets), so folds commute: any
/// partition of a record set folded into private registries and merged
/// reproduces the single-registry fold bit-exactly.  `include_phases`
/// additionally folds the per-phase latency histograms (the runner passes
/// config.collect_metrics).  Exposed so streaming sinks (exp/record_sink)
/// and the multiprocess parent use the exact same fold as the batch
/// runner.
void record_session_metrics(obs::MetricsRegistry& m, const SessionRecord& rec,
                            bool include_phases);

/// Runs the population sweep.  When `metrics` is non-null, per-scheme
/// counters and histograms (FFCT, corner-case rates, and — with
/// config.collect_metrics — the per-phase breakdown) are accumulated into
/// it.  Each worker owns a private registry; the locals are merged in
/// worker-index order after the join, and because the merge is
/// order-independent (bucket-wise addition) the aggregate is bit-identical
/// at any thread count.  With config.processes > 1 the same contract holds
/// across forked worker processes: records come back over a pipe via the
/// versioned record codec and registries are merged in worker order, so
/// `--procs N` output is byte-identical to serial.
std::vector<SessionRecord> run_population(const PopulationConfig& config,
                                          obs::MetricsRegistry* metrics);

/// Streaming variant (DESIGN.md §6 memory model): every completed record
/// is pushed into `sink` in strictly increasing index order and then
/// dropped, so the sweep holds O(workers) records at any instant instead
/// of O(sessions) — this is the million-session soak path.  Records,
/// their order, and the metrics aggregate are byte-identical to the
/// vector overload at any `threads`/`processes` setting (a CollectSink
/// reproduces it exactly).
///
/// Failure semantics differ from the vector overload in one way: records
/// already delivered to the sink cannot be recalled, so when a worker
/// process dies and retry_dead_shards is off, the PopulationShardError
/// carries an empty `salvaged` vector and `missing` lists every index not
/// yet delivered.  With retry_dead_shards on, the parent re-runs a dead
/// worker's remaining sessions in-process and the sink sees the full
/// uninterrupted index sequence.
void run_population(const PopulationConfig& config,
                    obs::MetricsRegistry* metrics, RecordSink& sink);

inline std::vector<SessionRecord> run_population(
    const PopulationConfig& config) {
  return run_population(config, nullptr);
}

/// Collects per-scheme FFCT samples (ms) over records passing `filter`.
template <typename Filter>
Samples collect_ffct(const std::vector<SessionRecord>& records,
                     core::Scheme scheme, Filter filter) {
  Samples s;
  for (const auto& r : records) {
    auto it = r.results.find(scheme);
    if (it == r.results.end() || !it->second.first_frame_completed) continue;
    if (!filter(r)) continue;
    s.add(to_ms(it->second.ffct));
  }
  return s;
}

inline Samples collect_ffct(const std::vector<SessionRecord>& records,
                            core::Scheme scheme) {
  return collect_ffct(records, scheme,
                      [](const SessionRecord&) { return true; });
}

/// Collects first-frame loss-rate samples (fraction) analogously.
template <typename Filter>
Samples collect_fflr(const std::vector<SessionRecord>& records,
                     core::Scheme scheme, Filter filter) {
  Samples s;
  for (const auto& r : records) {
    auto it = r.results.find(scheme);
    if (it == r.results.end() || !it->second.first_frame_completed) continue;
    if (!filter(r)) continue;
    s.add(it->second.fflr);
  }
  return s;
}

inline Samples collect_fflr(const std::vector<SessionRecord>& records,
                            core::Scheme scheme) {
  return collect_fflr(records, scheme,
                      [](const SessionRecord&) { return true; });
}

}  // namespace wira::exp
