// Monte-Carlo population A/B experiment: the laptop-scale stand-in for the
// paper's 6-month production deployment.  Each "session" draws an OD pair
// from the synthetic population, reconstructs its previous session's
// Hx_QoS (the transport cookie), and runs the same workload under every
// comparison scheme (paired design — variance-free scheme deltas).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/init_config.h"
#include "exp/session_runner.h"
#include "obs/metrics.h"
#include "popgen/population.h"
#include "util/stats.h"

namespace wira::exp {

struct PopulationConfig {
  uint64_t seed = 1;
  size_t sessions = 300;
  size_t num_groups = 64;
  /// Worker threads for the session sweep: 1 = serial (default),
  /// 0 = one per hardware thread, N = exactly N.  Sessions are seeded per
  /// index, so any thread count produces bit-identical records in
  /// identical order.
  size_t threads = 1;
  /// Fraction of connections establishing in 0-RTT (paper: ~90%).
  double p_zero_rtt = 0.90;
  /// Fraction of clients arriving with a stored cookie.
  double p_cookie = 0.93;
  std::vector<core::Scheme> schemes = {
      core::Scheme::kBaseline, core::Scheme::kWiraFF,
      core::Scheme::kWiraHx, core::Scheme::kWira};
  core::ExperiencedDefaults defaults;
  TimeNs staleness_threshold = core::kDefaultStaleness;
  uint32_t theta_vf = 1;
  cc::CcAlgo cc_algo = cc::CcAlgo::kBbrV1;
  TimeNs sync_period = core::kDefaultSyncPeriod;
  bool careful_resume = false;
  media::Container container = media::Container::kFlv;

  // ---- observability (PR 2) ----
  /// Collect per-session FFCT phase decompositions (SessionResult::phases)
  /// and, when a registry is passed to run_population, per-phase latency
  /// histograms.  Off by default: enabling it attaches a tracer to every
  /// session's server connection.
  bool collect_metrics = false;
  /// Dump a standard qlog (draft-ietf-quic-qlog as JSONL, obs/qlog.h) of
  /// every Nth session into trace_dir, one `.sqlog` file per
  /// (session, scheme).  0 = off.
  size_t trace_sample = 0;
  std::string trace_dir = "traces";
};

struct SessionRecord {
  popgen::PathSample conditions;   ///< ground-truth path at session time
  TimeNs cookie_age = 0;
  bool zero_rtt = false;
  bool had_cookie = false;
  uint64_t ff_size = 0;            ///< ground-truth first-frame size
  std::map<core::Scheme, SessionResult> results;
};

/// Runs the population sweep.  When `metrics` is non-null, per-scheme
/// counters and histograms (FFCT, corner-case rates, and — with
/// config.collect_metrics — the per-phase breakdown) are accumulated into
/// it.  Each worker owns a private registry; the locals are merged in
/// worker-index order after the join, and because the merge is
/// order-independent (bucket-wise addition) the aggregate is bit-identical
/// at any thread count.
std::vector<SessionRecord> run_population(const PopulationConfig& config,
                                          obs::MetricsRegistry* metrics);

inline std::vector<SessionRecord> run_population(
    const PopulationConfig& config) {
  return run_population(config, nullptr);
}

/// Collects per-scheme FFCT samples (ms) over records passing `filter`.
template <typename Filter>
Samples collect_ffct(const std::vector<SessionRecord>& records,
                     core::Scheme scheme, Filter filter) {
  Samples s;
  for (const auto& r : records) {
    auto it = r.results.find(scheme);
    if (it == r.results.end() || !it->second.first_frame_completed) continue;
    if (!filter(r)) continue;
    s.add(to_ms(it->second.ffct));
  }
  return s;
}

inline Samples collect_ffct(const std::vector<SessionRecord>& records,
                            core::Scheme scheme) {
  return collect_ffct(records, scheme,
                      [](const SessionRecord&) { return true; });
}

/// Collects first-frame loss-rate samples (fraction) analogously.
template <typename Filter>
Samples collect_fflr(const std::vector<SessionRecord>& records,
                     core::Scheme scheme, Filter filter) {
  Samples s;
  for (const auto& r : records) {
    auto it = r.results.find(scheme);
    if (it == r.results.end() || !it->second.first_frame_completed) continue;
    if (!filter(r)) continue;
    s.add(it->second.fflr);
  }
  return s;
}

inline Samples collect_fflr(const std::vector<SessionRecord>& records,
                            core::Scheme scheme) {
  return collect_fflr(records, scheme,
                      [](const SessionRecord&) { return true; });
}

}  // namespace wira::exp
