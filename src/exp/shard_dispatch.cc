// Dynamic chunk dispatcher over pluggable shard transports (DESIGN.md
// §6).  See shard_dispatch.h for the scheduling and transport contracts;
// this file holds the worker loop (shared by pipe children and
// wira_workerd), the two channel implementations, and the collect/stream
// dispatch drivers.
#include "exp/shard_dispatch.h"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/population_internal.h"
#include "exp/record_codec.h"
#include "exp/record_sink.h"
#include "obs/metrics.h"
#include "popgen/population.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace wira::exp {
namespace {

// The parent writes control frames to workers that may already be dead;
// without this the resulting EPIPE raises SIGPIPE and kills the sweep
// instead of letting the data-stream classifier name the death.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ign = {};
    ign.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ign, &old_);
  }
  ~SigpipeGuard() { sigaction(SIGPIPE, &old_, nullptr); }

  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction old_ = {};
};

}  // namespace

std::vector<Chunk> make_chunks(size_t sessions, size_t chunk_size,
                               size_t workers) {
  std::vector<Chunk> chunks;
  if (sessions == 0) return chunks;
  if (chunk_size == 0) {
    // Static striping: one balanced contiguous stripe per worker.
    if (workers == 0) workers = 1;
    const size_t base = sessions / workers;
    const size_t extra = sessions % workers;
    size_t at = 0;
    for (size_t w = 0; w < workers; ++w) {
      const size_t len = base + (w < extra ? 1 : 0);
      if (len == 0) continue;
      chunks.push_back({at, at + len});
      at += len;
    }
    return chunks;
  }
  for (size_t at = 0; at < sessions; at += chunk_size) {
    chunks.push_back({at, std::min(sessions, at + chunk_size)});
  }
  return chunks;
}

namespace {

// ---- worker side --------------------------------------------------------

/// Incremental frame reader over a control fd (pipe read end or socket).
class ControlReader {
 public:
  explicit ControlReader(int fd) : fd_(fd) {}

  bool read_header() {
    for (;;) {
      size_t off = off_;
      const FrameStatus st =
          read_stream_header({buf_.data(), buf_.size()}, &off);
      if (st == FrameStatus::kOk) {
        off_ = off;
        return true;
      }
      if (st == FrameStatus::kCorrupt) return false;
      if (!fill()) return false;
    }
  }

  /// Blocks for the next control frame; copies the payload out (the
  /// buffer is compacted between frames).  False on EOF or corruption.
  bool next(FrameType* type, std::vector<uint8_t>* payload) {
    for (;;) {
      size_t off = off_;
      FrameView view;
      const FrameStatus st = next_frame({buf_.data(), buf_.size()}, &off, &view);
      if (st == FrameStatus::kOk) {
        *type = view.type;
        payload->assign(view.payload.begin(), view.payload.end());
        off_ = off;
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(off_));
        off_ = 0;
        return true;
      }
      if (st == FrameStatus::kCorrupt) return false;
      if (!fill()) return false;
    }
  }

 private:
  bool fill() {
    uint8_t tmp[4096];
    for (;;) {
      const ssize_t n = read(fd_, tmp, sizeof(tmp));
      if (n > 0) {
        buf_.insert(buf_.end(), tmp, tmp + n);
        return true;
      }
      if (n == 0) return false;
      if (errno == EINTR) continue;
      return false;
    }
  }

  int fd_;
  std::vector<uint8_t> buf_;
  size_t off_ = 0;
};

/// Shared worker loop body: `control` is already past the stream header
/// (and, for wira_workerd, past the kConfig frame).
int run_shard_worker_frames(const PopulationConfig& config, size_t worker,
                            ControlReader& control, int data_fd) {
  std::signal(SIGPIPE, SIG_IGN);
  std::vector<uint8_t> out;
  append_stream_header(out);
  try {
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace ws;
    internal::arm_crash_forensics(config, worker, &ws.flight_recorder());

    bool end = false;
    std::deque<Chunk> todo;
    while (!end || !todo.empty()) {
      if (todo.empty()) {
        FrameType type;
        std::vector<uint8_t> payload;
        if (!control.next(&type, &payload)) return 2;
        if (type == FrameType::kEnd) {
          end = true;
          continue;
        }
        if (type != FrameType::kChunkAssign) return 2;
        CodecReader r({payload.data(), payload.size()});
        uint64_t begin = 0;
        uint64_t e = 0;
        if (!r.u64(&begin) || !r.u64(&e) || r.remaining() != 0 || begin > e) {
          return 2;
        }
        todo.push_back({static_cast<size_t>(begin), static_cast<size_t>(e)});
        continue;
      }
      const Chunk chunk = todo.front();
      todo.pop_front();
      for (size_t i = chunk.begin; i < chunk.end; ++i) {
        if (worker == config.straggler_worker &&
            config.straggler_delay_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(config.straggler_delay_us));
        }
        if (i == config.kill_at_index) {
          // Fault injection: flush what we have (header included) so the
          // parent sees a well-formed prefix, then die like a crash would.
          (void)internal::write_all(data_fd, out.data(), out.size());
          std::raise(SIGKILL);
        }
        const SessionRecord rec = internal::run_one_session(config, population,
                                                            i, ws);
        std::vector<uint8_t> payload;
        CodecWriter w(payload);
        w.u64(i);
        encode_session_record(rec, w);
        append_frame(FrameType::kSessionRecord, {payload.data(), payload.size()},
                     out);
        if (!internal::write_all(data_fd, out.data(), out.size())) return 3;
        out.clear();
        if (i == config.crash_after_index) {
          std::raise(config.crash_after_signal);
        }
      }
    }
    append_frame(FrameType::kEnd, {}, out);
    if (!internal::write_all(data_fd, out.data(), out.size())) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wira population worker %zu: %s\n", worker, e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "wira population worker %zu: unknown exception\n",
                 worker);
    return 1;
  }
}

}  // namespace

int run_shard_worker(const PopulationConfig& config, size_t worker,
                     int control_fd, int data_fd) {
  ControlReader control(control_fd);
  if (!control.read_header()) return 2;
  return run_shard_worker_frames(config, worker, control, data_fd);
}

int serve_shard_worker(int fd) {
  ControlReader control(fd);
  if (!control.read_header()) return 2;
  FrameType type;
  std::vector<uint8_t> payload;
  if (!control.next(&type, &payload) || type != FrameType::kConfig) return 2;
  CodecReader r({payload.data(), payload.size()});
  uint64_t worker_id = 0;
  PopulationConfig config;
  if (!r.u64(&worker_id) || !decode_population_config(r, &config) ||
      r.remaining() != 0) {
    return 2;
  }
  internal::prepare_trace_dir(config);
  internal::prepare_anomaly_dir(config);
  return run_shard_worker_frames(config, static_cast<size_t>(worker_id),
                                 control, fd);
}

namespace {

// ---- transports ---------------------------------------------------------

class PipeShardChannel : public ShardChannel {
 public:
  PipeShardChannel(pid_t pid, int control_fd, int data_fd)
      : pid_(pid), control_fd_(control_fd), data_fd_(data_fd) {}

  ~PipeShardChannel() override {
    if (control_fd_ >= 0) close(control_fd_);
    if (data_fd_ >= 0) close(data_fd_);
    if (!reaped_) {
      kill(pid_, SIGKILL);
      int status = 0;
      while (waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  int data_fd() const override { return data_fd_; }

  void close_data() override {
    if (data_fd_ >= 0) {
      close(data_fd_);
      data_fd_ = -1;
    }
  }

  bool send_control(const uint8_t* data, size_t n) override {
    if (control_fd_ < 0) return false;
    return internal::write_all(control_fd_, data, n);
  }

  void hard_kill() override { kill(pid_, SIGKILL); }

  std::string finish() override {
    if (control_fd_ >= 0) {
      close(control_fd_);
      control_fd_ = -1;
    }
    int status = 0;
    while (waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    reaped_ = true;
    if (WIFSIGNALED(status)) {
      return "killed by signal " + std::to_string(WTERMSIG(status));
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      return "exited with status " + std::to_string(WEXITSTATUS(status));
    }
    return "";
  }

 private:
  pid_t pid_;
  int control_fd_;
  int data_fd_;
  bool reaped_ = false;
};

class TcpShardChannel : public ShardChannel {
 public:
  explicit TcpShardChannel(int fd) : fd_(fd) {}

  ~TcpShardChannel() override {
    if (fd_ >= 0) close(fd_);
  }

  int data_fd() const override { return fd_; }

  void close_data() override {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

  bool send_control(const uint8_t* data, size_t n) override {
    if (fd_ < 0) return false;
    size_t sent = 0;
    while (sent < n) {
      const ssize_t r = send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(r);
    }
    return true;
  }

  // No process handle: dropping the socket is the strongest lever we
  // have, and finish() has no exit status to report.
  void hard_kill() override { close_data(); }

  std::string finish() override { return ""; }

 private:
  int fd_;
};

/// Stand-in channel for an endpoint that never came up: no fd, no
/// worker, just the stored connect failure.  The dispatcher's normal
/// EOF/reap path turns finish() into a ShardDeath, which is exactly how
/// a worker that died mid-sweep is handled — an unreachable worker is
/// the same failure, observed earlier.
class DeadShardChannel final : public ShardChannel {
 public:
  explicit DeadShardChannel(std::string reason) : reason_(std::move(reason)) {}

  int data_fd() const override { return -1; }
  void close_data() override {}
  bool send_control(const uint8_t*, size_t) override { return false; }
  void hard_kill() override {}
  std::string finish() override { return reason_; }

 private:
  std::string reason_;
};

/// Non-blocking connect bounded by timeout_ms (<=0 = kernel default).
/// Returns a connected fd (restored to blocking mode) or -1 with
/// *last_errno / *timed_out describing the failure.
int connect_with_timeout(const struct addrinfo* ai, int timeout_ms,
                         int* last_errno, bool* timed_out) {
  const int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
  if (fd < 0) {
    *last_errno = errno;
    return -1;
  }
  const int flags = fcntl(fd, F_GETFL, 0);
  if (timeout_ms > 0 && flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  int rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      *timed_out = true;
      close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (ready < 0 ||
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      so_error = errno;
    }
    if (so_error != 0) {
      *last_errno = so_error;
      close(fd);
      return -1;
    }
    rc = 0;
  }
  if (rc != 0) {
    *last_errno = errno;
    close(fd);
    return -1;
  }
  // The shard channel's control writes and the drain loop assume a
  // blocking fd; only the connect itself runs non-blocking.
  if (flags >= 0) fcntl(fd, F_SETFL, flags);
  return fd;
}

}  // namespace

std::unique_ptr<ShardChannel> connect_tcp_worker(const std::string& endpoint,
                                                 int connect_timeout_ms) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw std::runtime_error("run_population: bad worker endpoint \"" +
                             endpoint + "\" (want host:port)");
  }
  const std::string host = endpoint.substr(0, colon);
  const std::string port = endpoint.substr(colon + 1);

  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    return std::make_unique<DeadShardChannel>(
        "cannot resolve " + endpoint + ": " + gai_strerror(rc));
  }
  int fd = -1;
  int last_errno = ECONNREFUSED;
  bool timed_out = false;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = connect_with_timeout(ai, connect_timeout_ms, &last_errno, &timed_out);
    if (fd >= 0) break;
  }
  freeaddrinfo(res);
  if (fd < 0) {
    if (timed_out) {
      return std::make_unique<DeadShardChannel>(
          "connect to " + endpoint + " timed out after " +
          std::to_string(connect_timeout_ms) + " ms");
    }
    return std::make_unique<DeadShardChannel>(
        "cannot connect to " + endpoint + ": " + std::strerror(last_errno));
  }
  return std::make_unique<TcpShardChannel>(fd);
}

namespace {

// ---- parent side --------------------------------------------------------

struct WorkerState {
  std::unique_ptr<ShardChannel> ch;
  std::deque<size_t> assigned;  ///< chunk ids; front is in flight
  size_t pos = 0;               ///< sessions completed of the front chunk

  std::vector<uint8_t> buf;
  size_t off = 0;
  bool header_ok = false;
  bool end_seen = false;
  bool eof = false;
  bool retired = false;   ///< stream mode: dead worker already handled
  bool end_sent = false;  ///< kEnd control frame shipped
  bool finished = false;
  std::string defect;         ///< first stream-level defect, latched
  std::string finish_reason;  ///< from ShardChannel::finish()

  /// Parsed records not yet handed to the driver (stream mode bounds
  /// this; collect mode drains it every pass).
  std::deque<std::pair<size_t, SessionRecord>> ready;

  // Last completed chunk, for naming deaths that happen between chunks.
  size_t last_begin = 0;
  size_t last_end = 0;
};

/// Stream-mode backpressure: max parsed-but-unflushed records per worker.
constexpr size_t kStreamReadyCap = 8;

class ChunkDispatcher {
 public:
  ChunkDispatcher(const PopulationConfig& config, obs::MetricsRegistry* metrics)
      : config_(config), metrics_(metrics), stats_(config.dispatch_stats) {
    const size_t requested =
        config.workers.empty()
            ? util::ThreadPool::clamp_threads(config.processes, config.sessions)
            : config.workers.size();
    chunks_ = make_chunks(config.sessions, config.chunk, requested);
    chunk_owner_.assign(chunks_.size(), -1);
    // S1: never materialize a worker that would get an empty assignment.
    w_count_ = std::min(requested, chunks_.size());
    if (stats_ != nullptr) {
      stats_->workers_spawned = w_count_;
      stats_->busy_workers = 0;
      stats_->chunks_completed.assign(w_count_, 0);
      stats_->sessions_completed.assign(w_count_, 0);
    }
  }

  const std::vector<Chunk>& chunks() const { return chunks_; }
  size_t worker_count() const { return w_count_; }
  std::vector<WorkerState>& workers() { return workers_; }
  int owner_of(size_t chunk_id) const { return chunk_owner_[chunk_id]; }
  void orphan_chunk(size_t chunk_id) { chunk_owner_[chunk_id] = -2; }
  bool queue_empty() const { return next_chunk_ >= chunks_.size(); }

  /// Chunk containing session index i (chunks are contiguous and sorted).
  size_t chunk_index_of(size_t i) const {
    size_t lo = 0;
    size_t hi = chunks_.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (chunks_[mid].begin <= i) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void spawn() {
    workers_.resize(w_count_);
    if (config_.workers.empty()) {
      spawn_pipe_workers();
    } else {
      for (size_t w = 0; w < w_count_; ++w) {
        workers_[w].ch = connect_tcp_worker(config_.workers[w],
                                            config_.connect_timeout_ms);
        // An endpoint that never came up is EOF from the first poll:
        // marking it here routes it through the same dead-shard
        // classification a mid-sweep death takes, without waiting for
        // every live worker to finish first.
        if (workers_[w].ch->data_fd() < 0) workers_[w].eof = true;
      }
    }
    // Prologue + the double-buffered initial deal: two rounds of one
    // chunk each, round-robin, so every worker starts with an in-flight
    // chunk plus one buffered.  The round-robin order also pins chunk i
    // -> worker i for i < W, which the death-message tests rely on.
    for (size_t w = 0; w < w_count_; ++w) {
      std::vector<uint8_t> prologue;
      append_stream_header(prologue);
      if (!config_.workers.empty()) {
        std::vector<uint8_t> payload;
        CodecWriter cw(payload);
        cw.u64(static_cast<uint64_t>(w));
        encode_population_config(config_, cw);
        append_frame(FrameType::kConfig, {payload.data(), payload.size()},
                     prologue);
      }
      workers_[w].ch->send_control(prologue.data(), prologue.size());
    }
    for (int round = 0; round < 2; ++round) {
      for (size_t w = 0; w < w_count_ && next_chunk_ < chunks_.size(); ++w) {
        assign_chunk(w, next_chunk_++);
      }
    }
    for (size_t w = 0; w < w_count_; ++w) {
      maybe_send_end(w);
    }
    update_busy();
  }

  void assign_chunk(size_t w, size_t chunk_id) {
    const Chunk& c = chunks_[chunk_id];
    std::vector<uint8_t> payload;
    CodecWriter cw(payload);
    cw.u64(static_cast<uint64_t>(c.begin));
    cw.u64(static_cast<uint64_t>(c.end));
    std::vector<uint8_t> frame;
    append_frame(FrameType::kChunkAssign, {payload.data(), payload.size()},
                 frame);
    // A send failure means the worker died; the data-stream classifier
    // will name the death, so ignore it here.
    workers_[w].ch->send_control(frame.data(), frame.size());
    workers_[w].assigned.push_back(chunk_id);
    chunk_owner_[chunk_id] = static_cast<int>(w);
  }

  void maybe_send_end(size_t w) {
    WorkerState& ws = workers_[w];
    if (ws.end_sent || !ws.assigned.empty() || !queue_empty()) return;
    std::vector<uint8_t> frame;
    append_frame(FrameType::kEnd, {}, frame);
    ws.ch->send_control(frame.data(), frame.size());
    ws.end_sent = true;
  }

  /// Incremental parse of worker w's data buffer.  Records land in
  /// ws.ready; chunk completions trigger the next assignment (or kEnd).
  /// Any wire defect latches ws.defect and stops the parse.
  void parse(size_t w) {
    WorkerState& ws = workers_[w];
    if (!ws.defect.empty() || ws.end_seen) return;
    const std::span<const uint8_t> data(ws.buf.data(), ws.buf.size());
    if (!ws.header_ok) {
      size_t off = ws.off;
      const FrameStatus st = read_stream_header(data, &off);
      if (st == FrameStatus::kNeedMore) return;
      if (st == FrameStatus::kCorrupt) {
        ws.defect = "bad codec magic/version";
        return;
      }
      ws.header_ok = true;
      ws.off = off;
    }
    for (;;) {
      size_t off = ws.off;
      FrameView view;
      const FrameStatus st = next_frame(data, &off, &view);
      if (st == FrameStatus::kNeedMore) break;
      if (st == FrameStatus::kCorrupt) {
        ws.defect = "corrupt frame (checksum or type)";
        return;
      }
      if (view.type == FrameType::kEnd) {
        ws.off = off;
        ws.end_seen = true;
        if (off != ws.buf.size()) {
          ws.defect = "trailing bytes after end marker";
        }
        return;
      }
      if (view.type == FrameType::kMetrics) {
        ws.defect = "unexpected metrics frame";
        return;
      }
      if (view.type != FrameType::kSessionRecord) {
        ws.defect = "unexpected control frame on record stream";
        return;
      }
      CodecReader r(view.payload);
      uint64_t index = 0;
      SessionRecord rec;
      if (!r.u64(&index) || !decode_session_record(r, &rec) ||
          r.remaining() != 0) {
        ws.defect = "undecodable session record";
        return;
      }
      if (ws.assigned.empty()) {
        ws.defect = "session record outside any assignment";
        return;
      }
      const Chunk& cur = chunks_[ws.assigned.front()];
      if (index != cur.begin + ws.pos) {
        ws.defect = "session index out of assignment order";
        return;
      }
      ws.ready.emplace_back(static_cast<size_t>(index), std::move(rec));
      ws.off = off;
      ws.pos++;
      if (stats_ != nullptr) stats_->sessions_completed[w]++;
      if (ws.pos == cur.size()) {
        ws.last_begin = cur.begin;
        ws.last_end = cur.end;
        ws.assigned.pop_front();
        ws.pos = 0;
        if (stats_ != nullptr) stats_->chunks_completed[w]++;
        if (!queue_empty()) {
          assign_chunk(w, next_chunk_++);
        } else {
          maybe_send_end(w);
        }
        update_busy();
      }
    }
    // Compact consumed bytes so the buffer stays O(frame), not O(stream).
    if (ws.off > 0) {
      ws.buf.erase(ws.buf.begin(), ws.buf.begin() + static_cast<long>(ws.off));
      ws.off = 0;
    }
  }

  /// EOF classification: defect > transport reason > protocol state.
  std::string death_reason(const WorkerState& ws) const {
    if (!ws.defect.empty()) return ws.defect;
    if (!ws.finish_reason.empty()) return ws.finish_reason;
    if (ws.end_seen && (!ws.assigned.empty() || !ws.end_sent)) {
      return "end marker before assignment complete";
    }
    if (!ws.header_ok) return "truncated record stream (no header)";
    return "truncated record stream";
  }

  bool worker_dirty(const WorkerState& ws) const {
    return !ws.defect.empty() || !ws.finish_reason.empty() ||
           !ws.end_seen || !ws.assigned.empty();
  }

  /// Names the death: in-flight chunk if one exists, else the last chunk
  /// the worker completed (death between chunks / after its assignment).
  ShardDeath make_death(size_t w) const {
    const WorkerState& ws = workers_[w];
    ShardDeath d;
    d.worker = static_cast<int>(w);
    if (!ws.assigned.empty()) {
      const Chunk& c = chunks_[ws.assigned.front()];
      d.stripe_begin = c.begin;
      d.stripe_end = c.end;
      d.died_at = c.begin + ws.pos;
    } else {
      d.stripe_begin = ws.last_begin;
      d.stripe_end = ws.last_end;
      d.died_at = ws.last_end;
    }
    d.reason = death_reason(ws);
    return d;
  }

  void update_busy() {
    if (stats_ == nullptr) return;
    size_t busy = 0;
    for (const WorkerState& ws : workers_) {
      if (!ws.retired && !ws.eof && !ws.assigned.empty()) busy++;
    }
    stats_->busy_workers = std::max(stats_->busy_workers, busy);
  }

  size_t take_next_chunk() { return next_chunk_++; }

 private:
  void spawn_pipe_workers() {
    std::vector<int> parent_fds;  // earlier workers' parent-side fds
    for (size_t w = 0; w < w_count_; ++w) {
      int cfds[2];  // parent writes control -> child reads
      int dfds[2];  // child writes data -> parent reads
      if (pipe(cfds) != 0) {
        throw std::runtime_error("run_population: pipe() failed");
      }
      if (pipe(dfds) != 0) {
        close(cfds[0]);
        close(cfds[1]);
        throw std::runtime_error("run_population: pipe() failed");
      }
      const pid_t pid = fork();
      if (pid < 0) {
        close(cfds[0]);
        close(cfds[1]);
        close(dfds[0]);
        close(dfds[1]);
        throw std::runtime_error("run_population: fork() failed");
      }
      if (pid == 0) {
        // Child: drop every parent-side fd inherited across fork so a
        // sibling's EOF is not held open by us.
        for (const int fd : parent_fds) close(fd);
        close(cfds[1]);
        close(dfds[0]);
        _Exit(run_shard_worker(config_, w, cfds[0], dfds[1]));
      }
      close(cfds[0]);
      close(dfds[1]);
      parent_fds.push_back(cfds[1]);
      parent_fds.push_back(dfds[0]);
      workers_[w].ch =
          std::make_unique<PipeShardChannel>(pid, cfds[1], dfds[0]);
    }
  }

  const PopulationConfig& config_;
  obs::MetricsRegistry* metrics_;
  DispatchStats* stats_;
  std::vector<Chunk> chunks_;
  std::vector<int> chunk_owner_;  ///< -1 unassigned, -2 orphaned, else worker
  std::vector<WorkerState> workers_;
  size_t w_count_ = 0;
  size_t next_chunk_ = 0;
};

/// Reads whatever is available on worker w's data fd into its buffer.
/// Returns false on EOF (fd stays open; caller closes).
bool drain_fd(WorkerState& ws) {
  uint8_t tmp[65536];
  const ssize_t n = read(ws.ch->data_fd(), tmp, sizeof(tmp));
  if (n > 0) {
    ws.buf.insert(ws.buf.end(), tmp, tmp + n);
    return true;
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN)) return true;
  return false;
}

}  // namespace

std::vector<SessionRecord> dispatch_population_collect(
    const PopulationConfig& config, obs::MetricsRegistry* metrics) {
  std::vector<SessionRecord> records(config.sessions);
  std::vector<uint8_t> have(config.sessions, 0);
  if (config.sessions == 0) return records;

  SigpipeGuard sigpipe_guard;
  ChunkDispatcher disp(config, metrics);
  disp.spawn();
  auto& workers = disp.workers();
  const size_t w_count = disp.worker_count();

  auto drain_ready = [&](WorkerState& ws) {
    while (!ws.ready.empty()) {
      auto& [idx, rec] = ws.ready.front();
      records[idx] = std::move(rec);
      have[idx] = 1;
      ws.ready.pop_front();
    }
  };

  size_t open_fds = w_count;
  while (open_fds > 0) {
    std::vector<struct pollfd> pfds;
    std::vector<size_t> owner;
    for (size_t w = 0; w < w_count; ++w) {
      if (workers[w].eof || workers[w].ch->data_fd() < 0) continue;
      pfds.push_back({workers[w].ch->data_fd(), POLLIN, 0});
      owner.push_back(w);
    }
    if (pfds.empty()) break;
    const int rc = poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const size_t w = owner[p];
      WorkerState& ws = workers[w];
      if (!drain_fd(ws)) {
        ws.eof = true;
        ws.ch->close_data();
        open_fds--;
        continue;
      }
      disp.parse(w);
      drain_ready(ws);
      if (!ws.defect.empty()) {
        // A corrupt stream never recovers: stop the worker and move on.
        ws.ch->hard_kill();
        ws.ch->close_data();
        ws.eof = true;
        open_fds--;
      }
    }
  }

  // Reap everything and classify.
  std::vector<ShardDeath> deaths;
  for (size_t w = 0; w < w_count; ++w) {
    WorkerState& ws = workers[w];
    disp.parse(w);
    drain_ready(ws);
    ws.finish_reason = ws.ch->finish();
    ws.finished = true;
    if (disp.worker_dirty(ws)) {
      deaths.push_back(disp.make_death(w));
    }
  }
  disp.update_busy();

  std::vector<size_t> missing;
  for (size_t i = 0; i < config.sessions; ++i) {
    if (have[i] == 0) missing.push_back(i);
  }

  internal::materialize_crash_dumps(
      config, std::max(w_count, static_cast<size_t>(1)), metrics);

  if (!deaths.empty() || !missing.empty()) {
    if (deaths.empty()) {
      // Shouldn't happen (missing implies a dirty worker), but don't
      // lose records over it.
      ShardDeath d;
      d.worker = 0;
      d.reason = "incomplete record set";
      deaths.push_back(d);
    }
    std::string msg = "run_population: ";
    for (size_t d = 0; d < deaths.size(); ++d) {
      if (d > 0) msg += "; ";
      msg += "worker " + std::to_string(deaths[d].worker) + " (sessions [" +
             std::to_string(deaths[d].stripe_begin) + "," +
             std::to_string(deaths[d].stripe_end) + ")) " + deaths[d].reason +
             " while on session " + std::to_string(deaths[d].died_at);
    }
    msg += "; salvaged " + std::to_string(config.sessions - missing.size()) +
           " of " + std::to_string(config.sessions) + " records";
    if (!config.retry_dead_shards) {
      throw PopulationShardError(msg, std::move(deaths), std::move(records),
                                 std::move(missing));
    }
    WIRA_WARN("population",
              msg + "; retrying " + std::to_string(missing.size()) +
                  " missing session(s) in-process");
    popgen::Population population(config.seed * 31 + 7, config.num_groups);
    SessionWorkspace ws;
    for (const size_t i : missing) {
      records[i] = internal::run_one_session(config, population, i, ws);
    }
  }

  if (metrics != nullptr) {
    for (size_t i = 0; i < config.sessions; ++i) {
      record_session_metrics(*metrics, records[i], config.collect_metrics);
    }
  }
  return records;
}

void dispatch_population_stream(const PopulationConfig& config,
                                obs::MetricsRegistry* metrics,
                                RecordSink& sink) {
  if (config.sessions == 0) {
    sink.on_complete(0);
    return;
  }

  SigpipeGuard sigpipe_guard;
  ChunkDispatcher disp(config, metrics);
  disp.spawn();
  auto& workers = disp.workers();
  const size_t w_count = disp.worker_count();

  // Lazy in-process fallback for orphaned chunks under retry.
  std::optional<popgen::Population> retry_population;
  std::unique_ptr<SessionWorkspace> retry_ws;

  auto flush = [&](size_t i, SessionRecord&& rec) {
    if (metrics != nullptr) {
      record_session_metrics(*metrics, rec, config.collect_metrics);
    }
    sink.on_record(i, std::move(rec));
  };

  auto live_worker_exists = [&]() {
    for (const WorkerState& ws : workers) {
      if (!ws.retired && !ws.eof && ws.defect.empty()) return true;
    }
    return false;
  };

  // Waits for data on any worker that still has headroom; returns false
  // when nothing can make progress (every candidate dead or capped).
  auto pump = [&]() -> bool {
    std::vector<struct pollfd> pfds;
    std::vector<size_t> owner;
    for (size_t w = 0; w < w_count; ++w) {
      const WorkerState& ws = workers[w];
      if (ws.retired || ws.eof || ws.ch->data_fd() < 0) continue;
      if (!ws.defect.empty()) continue;
      if (ws.ready.size() >= kStreamReadyCap) continue;
      pfds.push_back({ws.ch->data_fd(), POLLIN, 0});
      owner.push_back(w);
    }
    if (pfds.empty()) return false;
    const int rc = poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) return true;
      return false;
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const size_t w = owner[p];
      WorkerState& ws = workers[w];
      if (!drain_fd(ws)) {
        ws.eof = true;
        ws.ch->close_data();
        continue;
      }
      disp.parse(w);
    }
    return true;
  };

  size_t delivered = 0;

  // Fails the sweep: snapshot every dead worker, reap everything, and
  // throw with the streaming contract (delivered records are gone).
  auto fail_sweep = [&](size_t dead_hint) {
    std::vector<ShardDeath> deaths;
    for (size_t w = 0; w < w_count; ++w) {
      WorkerState& ws = workers[w];
      if (ws.retired) continue;
      if (!ws.finished) {
        ws.ch->hard_kill();
        ws.ch->close_data();
        ws.finish_reason = ws.ch->finish();
        ws.finished = true;
      }
      // Only report workers that actually died; healthy ones were just
      // killed by us for cleanup.
      if (!ws.defect.empty() || (ws.eof && !ws.end_seen)) {
        deaths.push_back(disp.make_death(w));
      }
    }
    if (deaths.empty()) deaths.push_back(disp.make_death(dead_hint));
    std::vector<size_t> missing;
    for (size_t i = delivered; i < config.sessions; ++i) missing.push_back(i);
    internal::materialize_crash_dumps(
        config, std::max(w_count, static_cast<size_t>(1)), metrics);
    const ShardDeath& d = deaths.front();
    std::string msg =
        "run_population (streaming): worker " + std::to_string(d.worker) +
        " (sessions [" + std::to_string(d.stripe_begin) + "," +
        std::to_string(d.stripe_end) + ")) " + d.reason + " while on session " +
        std::to_string(d.died_at) + "; " + std::to_string(delivered) + " of " +
        std::to_string(config.sessions) +
        " records already delivered to the sink";
    throw PopulationShardError(msg, std::move(deaths), {}, std::move(missing));
  };

  // Retires a dead worker under retry: orphan its chunks and keep going.
  auto retire_worker = [&](size_t w) {
    WorkerState& ws = workers[w];
    ws.ch->hard_kill();
    ws.ch->close_data();
    if (!ws.finished) {
      ws.finish_reason = ws.ch->finish();
      ws.finished = true;
    }
    const ShardDeath d = disp.make_death(w);
    WIRA_WARN("population",
              "stream worker " + std::to_string(d.worker) + " " + d.reason +
                  " while on session " + std::to_string(d.died_at) +
                  "; re-running its remaining sessions in-process");
    for (const size_t chunk_id : ws.assigned) {
      disp.orphan_chunk(chunk_id);
    }
    ws.assigned.clear();
    ws.ready.clear();
    ws.retired = true;
    disp.update_busy();
  };

  auto run_inprocess = [&](size_t i) {
    if (!retry_population.has_value()) {
      retry_population.emplace(config.seed * 31 + 7, config.num_groups);
      retry_ws = std::make_unique<SessionWorkspace>();
    }
    return internal::run_one_session(config, *retry_population, i, *retry_ws);
  };

  size_t next = 0;
  while (next < config.sessions) {
    const size_t cid = disp.chunk_index_of(next);
    const int owner = disp.owner_of(cid);
    if (owner >= 0) {
      WorkerState& ws = workers[static_cast<size_t>(owner)];
      if (!ws.ready.empty() && ws.ready.front().first == next) {
        flush(next, std::move(ws.ready.front().second));
        ws.ready.pop_front();
        ++next;
        ++delivered;
        continue;
      }
      const bool dead = ws.retired || !ws.defect.empty() ||
                        (ws.eof && ws.ready.empty());
      if (dead) {
        if (!config.retry_dead_shards) {
          fail_sweep(static_cast<size_t>(owner));
        }
        if (!ws.retired) retire_worker(static_cast<size_t>(owner));
        // The cursor's chunk is now orphaned; next iteration handles it.
        continue;
      }
      if (!pump()) {
        // No pollable candidate can make progress: the cursor's owner is
        // stuck.  Treat it as dead.
        if (!config.retry_dead_shards) {
          fail_sweep(static_cast<size_t>(owner));
        }
        if (!workers[static_cast<size_t>(owner)].retired) {
          retire_worker(static_cast<size_t>(owner));
        }
      }
      continue;
    }
    if (owner == -2) {
      // Orphaned chunk: run the cursor's session in-process (retry mode
      // only ever orphans chunks).
      SessionRecord rec = run_inprocess(next);
      flush(next, std::move(rec));
      ++next;
      ++delivered;
      continue;
    }
    // Unassigned (-1): every chunk before cid is flushed (hence
    // assigned), so cid is the queue head.  Defensive path — a live
    // worker's chunk completion would have claimed it — but if nothing
    // can make progress, run it in-process rather than spin.
    if (live_worker_exists() && pump()) continue;
    if (!config.retry_dead_shards) fail_sweep(0);
    disp.take_next_chunk();
    disp.orphan_chunk(cid);
  }

  // Drain tails: every live worker should deliver its end marker.
  for (size_t w = 0; w < w_count; ++w) {
    WorkerState& ws = workers[w];
    if (ws.retired) continue;
    while (!ws.eof && ws.defect.empty() && !ws.end_seen) {
      if (!drain_fd(ws)) {
        ws.eof = true;
        break;
      }
      disp.parse(w);
    }
    ws.ch->close_data();
    if (!ws.finished) {
      ws.finish_reason = ws.ch->finish();
      ws.finished = true;
    }
  }

  // Post-sweep classification: a worker that delivered every record but
  // exited dirty still fails the sweep (unless retrying — the records
  // are all delivered, so there is nothing to re-run).
  std::vector<ShardDeath> tail_deaths;
  for (size_t w = 0; w < w_count; ++w) {
    WorkerState& ws = workers[w];
    if (ws.retired) continue;
    if (disp.worker_dirty(ws)) {
      tail_deaths.push_back(disp.make_death(w));
    }
  }
  internal::materialize_crash_dumps(
      config, std::max(w_count, static_cast<size_t>(1)), metrics);
  if (!tail_deaths.empty()) {
    std::string msg = "run_population (streaming): ";
    for (size_t d = 0; d < tail_deaths.size(); ++d) {
      if (d > 0) msg += "; ";
      msg += "worker " + std::to_string(tail_deaths[d].worker) + " " +
             tail_deaths[d].reason + " after delivering its full assignment";
    }
    if (!config.retry_dead_shards) {
      throw PopulationShardError(msg, std::move(tail_deaths), {}, {});
    }
    WIRA_WARN("population", msg + "; all records were delivered");
  }
  sink.on_complete(config.sessions);
}

}  // namespace wira::exp
