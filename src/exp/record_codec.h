// Versioned wire codec for the multiprocess population runner (DESIGN.md
// §6): workers stream length-prefixed, checksummed frames carrying
// serialized SessionRecords plus one serialized MetricsRegistry back to
// the parent over a pipe, and the parent reassembles them index-addressed.
//
// Layering:
//   - primitives: CodecWriter / CodecReader — little-endian fixed-width
//     integers, bit-cast doubles, length-prefixed strings, all reads
//     bounds-checked (a failed read latches the reader into a failed
//     state; no partial-field tearing).
//   - values: encode/decode for SessionRecord, SessionResult, HxQosRecord
//     and obs::MetricsRegistry.  Round trips are bit-exact (doubles are
//     bit-cast, histograms ship raw bucket counts), which is what makes
//     `--procs N` output byte-identical to serial.
//   - frames: a stream header (magic + codec version) followed by
//     [type u8][len u32][fnv1a-64 checksum u64][payload] frames and a
//     terminating kEnd frame.  EOF before kEnd means the worker died
//     mid-stripe: everything decoded up to that point is salvageable and
//     the first missing index names the session the worker was on.
//
// Versioning: bump kRecordCodecVersion on any layout change; the parent
// rejects streams from a mismatched worker outright (both sides are the
// same binary, so a mismatch means memory corruption, not skew).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exp/population_experiment.h"

namespace wira::obs {
class MetricsRegistry;
}

namespace wira::exp {

inline constexpr uint32_t kRecordCodecMagic = 0x57524331;  // "WRC1"
/// v2: SessionResult += packets_undecodable; SessionRecord += the four
/// flight-recorder anomaly-trigger counters (all appended at the end of
/// their structs, so pre-v2 field offsets are unchanged).
inline constexpr uint32_t kRecordCodecVersion = 2;

/// FNV-1a 64-bit over a byte span (the per-frame checksum).
uint64_t fnv1a64(std::span<const uint8_t> data);

/// Append-only primitive writer over a caller-owned byte vector.
class CodecWriter {
 public:
  explicit CodecWriter(std::vector<uint8_t>& out) : out_(out) {}

  void u8(uint8_t v) { out_.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(std::span<const uint8_t> data);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);

 private:
  std::vector<uint8_t>& out_;
};

/// Bounds-checked primitive reader.  Any out-of-range read latches
/// `failed()`; subsequent reads return zeros so decode loops can bail on
/// a single check per value.
class CodecReader {
 public:
  explicit CodecReader(std::span<const uint8_t> data) : data_(data) {}

  bool u8(uint8_t* v);
  bool u32(uint32_t* v);
  bool u64(uint64_t* v);
  bool i64(int64_t* v);
  bool f64(double* v);
  bool boolean(bool* v);
  bool str(std::string* s);

  bool failed() const { return failed_; }
  size_t offset() const { return off_; }
  size_t remaining() const { return data_.size() - off_; }

 private:
  bool take(size_t n, const uint8_t** p);

  std::span<const uint8_t> data_;
  size_t off_ = 0;
  bool failed_ = false;
};

// ---- value codecs -------------------------------------------------------

void encode_hxqos_record(const core::HxQosRecord& r, CodecWriter& w);
bool decode_hxqos_record(CodecReader& r, core::HxQosRecord* out);

void encode_session_result(const SessionResult& res, CodecWriter& w);
bool decode_session_result(CodecReader& r, SessionResult* out);

void encode_session_record(const SessionRecord& rec, CodecWriter& w);
bool decode_session_record(CodecReader& r, SessionRecord* out);

void encode_metrics_registry(const obs::MetricsRegistry& m, CodecWriter& w);
bool decode_metrics_registry(CodecReader& r, obs::MetricsRegistry* out);

/// Workload description shipped to a remote shard worker (the kConfig
/// control frame wira_workerd consumes).  Dispatcher-only fields —
/// threads, processes, workers, retry_dead_shards, dispatch_stats — are
/// *not* encoded: the receiving worker always runs its chunks serially
/// in-process, so decode leaves those at their defaults.
void encode_population_config(const PopulationConfig& c, CodecWriter& w);
bool decode_population_config(CodecReader& r, PopulationConfig* out);

// ---- frame layer --------------------------------------------------------

enum class FrameType : uint8_t {
  kSessionRecord = 1,  ///< payload: u64 session index + SessionRecord
  kMetrics = 2,        ///< payload: MetricsRegistry
  kEnd = 3,            ///< empty payload; clean end-of-stream marker
  // Control frames (parent → worker).  They share the frame layer with
  // the data stream but travel on the opposite direction of the channel,
  // so the data-stream layout — and kRecordCodecVersion — is unchanged.
  kConfig = 4,       ///< payload: u64 worker id + PopulationConfig
  kChunkAssign = 5,  ///< payload: u64 begin + u64 end (session indices)
};

/// Writes the stream header (magic + version) a worker emits once before
/// its first frame.
void append_stream_header(std::vector<uint8_t>& out);

/// Appends one [type][len][checksum][payload] frame.
void append_frame(FrameType type, std::span<const uint8_t> payload,
                  std::vector<uint8_t>& out);

enum class FrameStatus {
  kOk,        ///< frame parsed, *offset advanced past it
  kNeedMore,  ///< buffer ends mid-header or mid-payload (truncated stream)
  kCorrupt,   ///< bad magic/version/type or checksum mismatch
};

struct FrameView {
  FrameType type = FrameType::kEnd;
  std::span<const uint8_t> payload;
};

/// Validates the stream header at *offset and advances past it.
FrameStatus read_stream_header(std::span<const uint8_t> data,
                               size_t* offset);

/// Parses the next frame at *offset.  On kOk the view borrows `data`.
FrameStatus next_frame(std::span<const uint8_t> data, size_t* offset,
                       FrameView* out);

}  // namespace wira::exp
