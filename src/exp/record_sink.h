// Streaming record consumption for the population runner (the
// bounded-memory soak path, DESIGN.md §6).
//
// `run_population(config, metrics, sink)` pushes every completed
// SessionRecord into a RecordSink in index order instead of retaining it,
// so a million-session sweep holds O(workers) records in memory at any
// instant rather than O(sessions).  Three sinks cover the ROADMAP uses:
//
//   - CollectSink: in-memory vector — the classic API.  The vector
//     overload of run_population is exactly this sink, so collect mode
//     stays byte-identical to streaming mode by construction.
//   - AggregateSink: streaming aggregation — folds each record into a
//     mergeable obs::MetricsRegistry whose log-bucketed histograms act as
//     quantile sketches (no util::Samples, no per-session retention) and
//     optionally emits one cumulative JSONL summary line every
//     `flush_every` sessions.  This is what the fleet-scale soak runs.
//   - CodecStreamSink: serializes each record as an exp/record_codec
//     frame onto an ostream — the same wire format multiprocess workers
//     speak, so a soak can feed a pipe/file that a future multi-host
//     dispatcher (or today's tests) replays frame by frame.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/population_experiment.h"
#include "obs/metrics.h"

namespace wira::exp {

/// Consumer of completed session records.
///
/// Contract: on_record is called exactly once per session, in strictly
/// increasing index order, and never concurrently (the runner serializes
/// calls no matter how many threads or processes produced the records) —
/// sinks need not be thread-safe.  The record is moved from after the
/// call, so sinks may scavenge it.  on_complete fires once after the last
/// record of a fully successful sweep; on failure the sweep throws
/// instead and on_complete never runs.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_record(size_t index, SessionRecord&& rec) = 0;
  virtual void on_complete(size_t sessions) { (void)sessions; }
};

/// Retains every record — the pre-soak behavior, as a sink.
class CollectSink final : public RecordSink {
 public:
  CollectSink() = default;
  explicit CollectSink(size_t expected_sessions) {
    records_.reserve(expected_sessions);
  }

  void on_record(size_t index, SessionRecord&& rec) override;

  const std::vector<SessionRecord>& records() const { return records_; }
  std::vector<SessionRecord> take() { return std::move(records_); }

 private:
  std::vector<SessionRecord> records_;
};

/// Streaming aggregation: bounded memory regardless of session count.
///
/// Every record folds into `registry()` via record_session_metrics — the
/// same fold the batch runner uses, so the aggregate is bit-identical to
/// a collect-mode run's registry.  Per-scheme FFCT/FFLR quantiles come
/// from the registry's log-bucketed histograms (<=6.25% quantization,
/// commutative merge); no per-session value is ever retained.
class AggregateSink final : public RecordSink {
 public:
  struct Options {
    /// Emit a cumulative JSONL summary line every N sessions (0 = only
    /// the final line from on_complete).  Requires `flush_out`.
    size_t flush_every = 0;
    std::ostream* flush_out = nullptr;  ///< not owned; may be null
    /// Fold per-phase histograms too (mirrors collect_metrics).
    bool include_phases = false;
  };

  AggregateSink() = default;
  explicit AggregateSink(Options options) : options_(options) {}

  void on_record(size_t index, SessionRecord&& rec) override;
  void on_complete(size_t sessions) override;

  /// Cumulative aggregate over every record seen so far.
  const obs::MetricsRegistry& registry() const { return registry_; }
  uint64_t sessions_seen() const { return sessions_seen_; }
  uint64_t flushes_written() const { return flushes_written_; }

  /// Merges another sink's aggregate into this one (order-independent,
  /// like the registries it wraps): sharded soaks aggregate per worker
  /// and merge, identically to one big run.
  void merge(const AggregateSink& other);

  /// Hook appending extra JSON fields to each flush line (the soak bench
  /// injects `"rss_mb": ...`): append `,"key":value` text to *extra.
  void set_flush_hook(void (*hook)(uint64_t sessions_done,
                                   std::string* extra, void* arg),
                      void* arg) {
    flush_hook_ = hook;
    flush_hook_arg_ = arg;
  }

  /// One cumulative summary line: {"sessions":N,"final":bool,
  /// "schemes":{name:{"sessions":n,"ffct_ms":{...},"fflr_ppm":{...}}}}.
  /// Deterministic: scheme order is lexicographic, all numbers derive
  /// from integer histogram state.
  void write_summary_line(std::ostream& os, bool final_line) const;

 private:
  void flush_line(bool final_line);

  Options options_;
  obs::MetricsRegistry registry_;
  uint64_t sessions_seen_ = 0;
  uint64_t flushes_written_ = 0;
  void (*flush_hook_)(uint64_t, std::string*, void*) = nullptr;
  void* flush_hook_arg_ = nullptr;
};

/// Streams records in the multiprocess wire format (exp/record_codec):
/// stream header at construction, one checksummed kSessionRecord frame
/// per record, kEnd at on_complete.  The output is exactly what a worker
/// child writes to its pipe, so any codec consumer can replay it.
class CodecStreamSink final : public RecordSink {
 public:
  explicit CodecStreamSink(std::ostream& os);

  void on_record(size_t index, SessionRecord&& rec) override;
  void on_complete(size_t sessions) override;

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void write_buf();

  std::ostream& os_;
  std::vector<uint8_t> frame_;    ///< reused frame scratch
  std::vector<uint8_t> payload_;  ///< reused payload scratch
  uint64_t bytes_written_ = 0;
};

}  // namespace wira::exp
