#include "quic/frames.h"

namespace wira::quic {

bool AckFrame::covers(PacketNumber pn) const {
  for (const Range& r : ranges) {
    if (pn >= r.lo && pn <= r.hi) return true;
  }
  return false;
}

namespace {

size_t varint_size(uint64_t v) {
  if (v < (1ull << 6)) return 1;
  if (v < (1ull << 14)) return 2;
  if (v < (1ull << 30)) return 4;
  return 8;
}

struct WireSizeVisitor {
  size_t operator()(const PaddingFrame& f) const { return f.length; }
  size_t operator()(const PingFrame&) const { return 1; }
  size_t operator()(const AckFrame& f) const {
    size_t n = 1 + varint_size(f.largest_acked) +
               varint_size(static_cast<uint64_t>(to_us(f.ack_delay))) +
               varint_size(f.ranges.size());
    uint64_t prev_lo = 0;
    bool first = true;
    for (const Range& r : f.ranges) {
      if (first) {
        n += varint_size(f.largest_acked - r.lo);
        first = false;
      } else {
        n += varint_size(prev_lo - r.hi - 2) + varint_size(r.hi - r.lo);
      }
      prev_lo = r.lo;
    }
    return n;
  }
  size_t operator()(const CryptoFrame& f) const {
    return 1 + varint_size(f.offset) + varint_size(f.data.size()) +
           f.data.size();
  }
  size_t operator()(const StreamFrame& f) const {
    return 1 + varint_size(f.stream_id) + varint_size(f.offset) +
           varint_size(f.data.size()) + 1 + f.data.size();
  }
  size_t operator()(const ConnectionCloseFrame& f) const {
    return 1 + varint_size(f.error_code) + varint_size(f.reason.size()) +
           f.reason.size();
  }
  size_t operator()(const HxQosFrame& f) const {
    return 1 + varint_size(f.server_time_ms) +
           varint_size(f.sealed_blob.size()) + f.sealed_blob.size();
  }
};

struct SerializeVisitor {
  ByteWriter& out;

  void operator()(const PaddingFrame& f) const {
    out.zeros(f.length);  // padding type byte is 0x00
  }
  void operator()(const PingFrame&) const {
    out.u8(static_cast<uint8_t>(FrameType::kPing));
  }
  void operator()(const AckFrame& f) const {
    out.u8(static_cast<uint8_t>(FrameType::kAck));
    out.varint(f.largest_acked);
    out.varint(static_cast<uint64_t>(to_us(f.ack_delay)));
    out.varint(f.ranges.size());
    uint64_t prev_lo = 0;
    bool first = true;
    for (const Range& r : f.ranges) {
      if (first) {
        out.varint(f.largest_acked - r.lo);
        first = false;
      } else {
        out.varint(prev_lo - r.hi - 2);  // gap
        out.varint(r.hi - r.lo);         // range length - 1
      }
      prev_lo = r.lo;
    }
  }
  void operator()(const CryptoFrame& f) const {
    out.u8(static_cast<uint8_t>(FrameType::kCrypto));
    out.varint(f.offset);
    out.varint(f.data.size());
    out.bytes(f.data);
  }
  void operator()(const StreamFrame& f) const {
    out.u8(static_cast<uint8_t>(FrameType::kStream));
    out.varint(f.stream_id);
    out.varint(f.offset);
    out.varint(f.data.size());
    out.u8(f.fin ? 1 : 0);
    out.bytes(f.data);
  }
  void operator()(const ConnectionCloseFrame& f) const {
    out.u8(static_cast<uint8_t>(FrameType::kConnectionClose));
    out.varint(f.error_code);
    out.varint(f.reason.size());
    out.str(f.reason);
  }
  void operator()(const HxQosFrame& f) const {
    out.u8(static_cast<uint8_t>(FrameType::kHxQos));
    out.varint(f.server_time_ms);
    out.varint(f.sealed_blob.size());
    out.bytes(f.sealed_blob);
  }
};

}  // namespace

size_t frame_wire_size(const Frame& frame) {
  return std::visit(WireSizeVisitor{}, frame);
}

void serialize_frame(const Frame& frame, ByteWriter& out) {
  std::visit(SerializeVisitor{out}, frame);
}

std::optional<Frame> parse_frame(ByteReader& in, util::Arena* arena) {
  const uint8_t type = in.u8();
  if (!in.ok()) return std::nullopt;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kPadding: {
      PaddingFrame f;
      f.length = 1;
      while (in.remaining() > 0 && in.peek_u8() == 0) {
        in.u8();
        f.length++;
      }
      return Frame{f};
    }
    case FrameType::kPing:
      return Frame{PingFrame{}};
    case FrameType::kAck: {
      AckFrame f;
      f.ranges = util::ArenaVector<Range>(util::ArenaAllocator<Range>(arena));
      f.largest_acked = in.varint();
      f.ack_delay = microseconds(static_cast<int64_t>(in.varint()));
      const uint64_t count = in.varint();
      if (count > 1024) return std::nullopt;
      if (in.ok()) f.ranges.reserve(count);
      uint64_t prev_lo = 0;
      for (uint64_t i = 0; i < count && in.ok(); ++i) {
        Range r;
        if (i == 0) {
          const uint64_t first_range = in.varint();
          if (first_range > f.largest_acked) return std::nullopt;
          r.hi = f.largest_acked;
          r.lo = f.largest_acked - first_range;
        } else {
          const uint64_t gap = in.varint();
          const uint64_t len = in.varint();
          if (prev_lo < gap + 2) return std::nullopt;
          r.hi = prev_lo - gap - 2;
          if (r.hi < len) return std::nullopt;
          r.lo = r.hi - len;
        }
        prev_lo = r.lo;
        f.ranges.push_back(r);
      }
      if (!in.ok()) return std::nullopt;
      return Frame{std::move(f)};
    }
    case FrameType::kCrypto: {
      CryptoFrame f;
      f.offset = in.varint();
      const uint64_t len = in.varint();
      f.data = in.bytes(len);  // borrowed view into the datagram buffer
      if (!in.ok()) return std::nullopt;
      return Frame{f};
    }
    case FrameType::kStream: {
      StreamFrame f;
      f.stream_id = in.varint();
      f.offset = in.varint();
      const uint64_t len = in.varint();
      f.fin = in.u8() != 0;
      f.data = in.bytes(len);  // borrowed view into the datagram buffer
      if (!in.ok()) return std::nullopt;
      return Frame{f};
    }
    case FrameType::kConnectionClose: {
      ConnectionCloseFrame f;
      f.error_code = in.varint();
      const uint64_t len = in.varint();
      f.reason = in.str(len);
      if (!in.ok()) return std::nullopt;
      return Frame{std::move(f)};
    }
    case FrameType::kHxQos: {
      HxQosFrame f;
      f.server_time_ms = in.varint();
      const uint64_t len = in.varint();
      f.sealed_blob = in.bytes(len);  // borrowed view
      if (!in.ok()) return std::nullopt;
      return Frame{f};
    }
    default:
      return std::nullopt;
  }
}

bool is_retransmittable(const Frame& frame) {
  return !std::holds_alternative<AckFrame>(frame) &&
         !std::holds_alternative<PaddingFrame>(frame);
}

AckFrame build_ack(const RangeSet& received, TimeNs ack_delay,
                   size_t max_ranges, util::Arena* arena) {
  AckFrame f;
  f.ranges = util::ArenaVector<Range>(util::ArenaAllocator<Range>(arena));
  f.ack_delay = ack_delay;
  if (received.empty()) return f;
  f.largest_acked = received.max();
  f.ranges.reserve(std::min(received.size(), max_ranges));
  received.visit_descending(
      [&f](const Range& r) { f.ranges.push_back(r); }, max_ranges);
  return f;
}

}  // namespace wira::quic
