#include "quic/packet.h"

namespace wira::quic {

bool Packet::retransmittable() const {
  for (const Frame& f : frames) {
    if (is_retransmittable(f)) return true;
  }
  return false;
}

size_t Packet::wire_size() const {
  size_t n = kPacketHeaderSize;
  for (const Frame& f : frames) n += frame_wire_size(f);
  return n;
}

std::vector<uint8_t> serialize_packet(const Packet& p) {
  return serialize_packet(p, {});
}

std::vector<uint8_t> serialize_packet(const Packet& p,
                                      std::vector<uint8_t> reuse) {
  reuse.reserve(p.wire_size());
  ByteWriter w(std::move(reuse));
  w.u8(static_cast<uint8_t>(p.type));
  w.u64be(p.conn_id);
  w.u64be(p.packet_number);
  for (const Frame& f : p.frames) serialize_frame(f, w);
  return w.take();
}

std::optional<Packet> parse_packet(std::span<const uint8_t> data,
                                   util::Arena* arena) {
  ByteReader r(data);
  Packet p(arena);
  const uint8_t type = r.u8();
  switch (static_cast<PacketType>(type)) {
    case PacketType::kInitial:
    case PacketType::kZeroRtt:
    case PacketType::kOneRtt:
    case PacketType::kHxQos:
      p.type = static_cast<PacketType>(type);
      break;
    default:
      return std::nullopt;
  }
  p.conn_id = r.u64be();
  p.packet_number = r.u64be();
  if (!r.ok()) return std::nullopt;
  while (r.ok() && r.remaining() > 0) {
    auto f = parse_frame(r, arena);
    if (!f) return std::nullopt;
    p.frames.push_back(std::move(*f));
  }
  return p;
}

}  // namespace wira::quic
