// QUIC frame definitions and wire codecs.
//
// Frames are a std::variant; serialization goes through ByteWriter/Reader
// so malformed input is handled via the reader's error latch rather than
// exceptions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "quic/range_set.h"
#include "quic/types.h"
#include "util/bytes.h"

namespace wira::quic {

/// Frame type codes on the wire.
enum class FrameType : uint8_t {
  kPadding = 0x00,
  kPing = 0x01,
  kAck = 0x02,
  kCrypto = 0x06,
  kStream = 0x08,
  kConnectionClose = 0x1c,
  kHxQos = 0x1f,  ///< Wira Hx_QoS frame (§IV-B, Fig. 8)
};

struct PaddingFrame {
  uint32_t length = 1;
};

struct PingFrame {};

struct AckFrame {
  PacketNumber largest_acked = 0;
  TimeNs ack_delay = 0;
  /// Acked ranges in descending order, first covering largest_acked.
  std::vector<Range> ranges;

  bool covers(PacketNumber pn) const;
};

struct CryptoFrame {
  uint64_t offset = 0;  ///< offset within the crypto stream
  std::vector<uint8_t> data;
};

struct StreamFrame {
  StreamId stream_id = 0;
  uint64_t offset = 0;
  bool fin = false;
  std::vector<uint8_t> data;
};

struct ConnectionCloseFrame {
  uint64_t error_code = 0;
  std::string reason;
};

/// Wira Hx_QoS frame: an opaque sealed blob (only the server can open it)
/// plus the server's wall-clock send time in milliseconds (advisory; the
/// authoritative timestamp is sealed inside the blob).
struct HxQosFrame {
  uint64_t server_time_ms = 0;
  std::vector<uint8_t> sealed_blob;
};

using Frame = std::variant<PaddingFrame, PingFrame, AckFrame, CryptoFrame,
                           StreamFrame, ConnectionCloseFrame, HxQosFrame>;

/// Serialized size of a frame (exact — used for packet packing decisions).
size_t frame_wire_size(const Frame& frame);

void serialize_frame(const Frame& frame, ByteWriter& out);

/// Parses one frame; nullopt on malformed input (reader latched failed).
std::optional<Frame> parse_frame(ByteReader& in);

/// True if the frame counts as retransmittable (ack-eliciting).
bool is_retransmittable(const Frame& frame);

/// Builds an AckFrame from a set of received packet numbers, keeping at
/// most `max_ranges` ranges (most recent first).
AckFrame build_ack(const RangeSet& received, TimeNs ack_delay,
                   size_t max_ranges = 32);

}  // namespace wira::quic
