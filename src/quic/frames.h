// QUIC frame definitions and wire codecs.
//
// Frames are a std::variant; serialization goes through ByteWriter/Reader
// so malformed input is handled via the reader's error latch rather than
// exceptions.
//
// Zero-copy contract: the payload-bearing frames (CryptoFrame, StreamFrame,
// HxQosFrame) hold std::span views, not owned vectors.  On parse the spans
// borrow directly from the datagram buffer; on serialize they borrow from
// whatever the caller keeps alive (a SendStream buffer, a sealed-cookie
// vector).  A frame is therefore valid only as long as its backing bytes:
// consumers that need the payload past the current call copy it explicitly
// (RecvStream's reassembly map is the single copy point on the rx path).
// AckFrame::ranges may live in a per-loop Arena when an arena is passed to
// parse_frame/build_ack; copies of such frames fall back to the heap.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "quic/range_set.h"
#include "quic/types.h"
#include "util/arena.h"
#include "util/bytes.h"

namespace wira::quic {

/// Frame type codes on the wire.
enum class FrameType : uint8_t {
  kPadding = 0x00,
  kPing = 0x01,
  kAck = 0x02,
  kCrypto = 0x06,
  kStream = 0x08,
  kConnectionClose = 0x1c,
  kHxQos = 0x1f,  ///< Wira Hx_QoS frame (§IV-B, Fig. 8)
};

struct PaddingFrame {
  uint32_t length = 1;
};

struct PingFrame {};

struct AckFrame {
  PacketNumber largest_acked = 0;
  TimeNs ack_delay = 0;
  /// Acked ranges in descending order, first covering largest_acked.
  /// Arena-backed on the hot path (see build_ack/parse_frame), heap by
  /// default.
  util::ArenaVector<Range> ranges;

  bool covers(PacketNumber pn) const;
};

struct CryptoFrame {
  uint64_t offset = 0;  ///< offset within the crypto stream
  std::span<const uint8_t> data;  ///< borrowed; copy to outlive the call
};

struct StreamFrame {
  StreamId stream_id = 0;
  uint64_t offset = 0;
  bool fin = false;
  std::span<const uint8_t> data;  ///< borrowed; copy to outlive the call
};

struct ConnectionCloseFrame {
  uint64_t error_code = 0;
  std::string reason;
};

/// Wira Hx_QoS frame: an opaque sealed blob (only the server can open it)
/// plus the server's wall-clock send time in milliseconds (advisory; the
/// authoritative timestamp is sealed inside the blob).
struct HxQosFrame {
  uint64_t server_time_ms = 0;
  std::span<const uint8_t> sealed_blob;  ///< borrowed, like StreamFrame
};

using Frame = std::variant<PaddingFrame, PingFrame, AckFrame, CryptoFrame,
                           StreamFrame, ConnectionCloseFrame, HxQosFrame>;

/// Serialized size of a frame (exact — used for packet packing decisions).
size_t frame_wire_size(const Frame& frame);

void serialize_frame(const Frame& frame, ByteWriter& out);

/// Parses one frame; nullopt on malformed input (reader latched failed).
/// Payload spans borrow from the reader's underlying buffer; ACK ranges
/// bump-allocate from `arena` when given (heap otherwise).
std::optional<Frame> parse_frame(ByteReader& in,
                                 util::Arena* arena = nullptr);

/// True if the frame counts as retransmittable (ack-eliciting).
bool is_retransmittable(const Frame& frame);

/// Builds an AckFrame from a set of received packet numbers, keeping at
/// most `max_ranges` ranges (most recent first).  Ranges bump-allocate
/// from `arena` when given.
AckFrame build_ack(const RangeSet& received, TimeNs ack_delay,
                   size_t max_ranges = 32, util::Arena* arena = nullptr);

}  // namespace wira::quic
