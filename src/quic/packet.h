// QUIC packet: header {type, connection id, packet number} + frames.
//
// Zero-copy contract (see frames.h): a parsed Packet borrows — its payload
// frames hold spans into the datagram buffer, and with an Arena both the
// frame vector and ACK ranges bump-allocate from it.  A parsed packet is
// therefore valid only for the duration of the delivery event; anything
// that must outlive it (crypto data, stream bytes, cookies) is copied by
// its consumer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/frames.h"
#include "quic/types.h"
#include "util/arena.h"

namespace wira::quic {

struct Packet {
  Packet() = default;
  /// Arena-backed packet: the frame vector bump-allocates from `arena`
  /// (tx hot path — the packet dies inside the event that builds it).
  explicit Packet(util::Arena* arena)
      : frames(util::ArenaAllocator<Frame>(arena)) {}

  PacketType type = PacketType::kOneRtt;
  ConnectionId conn_id = 0;
  PacketNumber packet_number = 0;
  util::ArenaVector<Frame> frames;

  bool retransmittable() const;
  /// Serialized size in bytes (header + frames).
  size_t wire_size() const;
};

std::vector<uint8_t> serialize_packet(const Packet& p);
/// As above, but serializes into `reuse` (cleared first) so a pooled
/// buffer's capacity is recycled instead of allocating per packet.
std::vector<uint8_t> serialize_packet(const Packet& p,
                                      std::vector<uint8_t> reuse);
/// Parses a datagram.  Payload frames borrow spans into `data`; with an
/// arena, the frame vector and ACK ranges bump-allocate from it.
std::optional<Packet> parse_packet(std::span<const uint8_t> data,
                                   util::Arena* arena = nullptr);

/// Header size used in packing budgets.
inline constexpr size_t kPacketHeaderSize = 1 + 8 + 8;

}  // namespace wira::quic
