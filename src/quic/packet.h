// QUIC packet: header {type, connection id, packet number} + frames.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/frames.h"
#include "quic/types.h"

namespace wira::quic {

struct Packet {
  PacketType type = PacketType::kOneRtt;
  ConnectionId conn_id = 0;
  PacketNumber packet_number = 0;
  std::vector<Frame> frames;

  bool retransmittable() const;
  /// Serialized size in bytes (header + frames).
  size_t wire_size() const;
};

std::vector<uint8_t> serialize_packet(const Packet& p);
/// As above, but serializes into `reuse` (cleared first) so a pooled
/// buffer's capacity is recycled instead of allocating per packet.
std::vector<uint8_t> serialize_packet(const Packet& p,
                                      std::vector<uint8_t> reuse);
std::optional<Packet> parse_packet(std::span<const uint8_t> data);

/// Header size used in packing budgets.
inline constexpr size_t kPacketHeaderSize = 1 + 8 + 8;

}  // namespace wira::quic
