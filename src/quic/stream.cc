#include "quic/stream.h"

#include <algorithm>

namespace wira::quic {

uint64_t SendStream::write(std::span<const uint8_t> data, bool fin) {
  const uint64_t start = buffer_.size();
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (fin) {
    fin_written_ = true;
    fin_needs_send_ = true;
  }
  return start;
}

bool SendStream::has_data_to_send() const {
  return !retx_.empty() || next_offset_ < buffer_.size() || fin_needs_send_;
}

std::optional<SendStream::Chunk> SendStream::next_chunk(uint64_t max_len) {
  if (max_len == 0) return std::nullopt;
  Chunk c;
  if (!retx_.empty()) {
    const Range r = retx_.pop_front(max_len);
    c.offset = r.lo;
    c.data = std::span<const uint8_t>(buffer_).subspan(r.lo, r.hi + 1 - r.lo);
    c.fin = fin_written_ && r.hi + 1 == buffer_.size();
    return c;
  }
  if (next_offset_ < buffer_.size()) {
    const uint64_t len =
        std::min<uint64_t>(max_len, buffer_.size() - next_offset_);
    c.offset = next_offset_;
    c.data = std::span<const uint8_t>(buffer_).subspan(next_offset_, len);
    next_offset_ += len;
    c.fin = fin_written_ && next_offset_ == buffer_.size();
    if (c.fin) fin_needs_send_ = false;
    return c;
  }
  if (fin_needs_send_) {
    c.offset = buffer_.size();
    c.fin = true;
    fin_needs_send_ = false;
    return c;
  }
  return std::nullopt;
}

void SendStream::on_range_acked(uint64_t offset, uint64_t len,
                                bool fin_acked) {
  if (len > 0) {
    acked_.add(offset, offset + len - 1);
    retx_.subtract(offset, offset + len - 1);
  }
  if (fin_acked) fin_acked_ = true;
}

void SendStream::on_range_lost(uint64_t offset, uint64_t len, bool fin_lost) {
  if (len > 0) {
    RangeSet lost;
    lost.add(offset, offset + len - 1);
    for (const Range& a : acked_.ascending()) lost.subtract(a.lo, a.hi);
    for (const Range& r : lost.ascending()) retx_.add(r.lo, r.hi);
  }
  if (fin_lost && !fin_acked_) fin_needs_send_ = true;
}

bool SendStream::all_acked() const {
  if (buffer_.empty()) return !fin_written_ || fin_acked_;
  return acked_.size() == 1 && acked_.min() == 0 &&
         acked_.max() == buffer_.size() - 1 &&
         (!fin_written_ || fin_acked_);
}

uint64_t SendStream::pending_bytes() const {
  return retx_.total_length() + (buffer_.size() - next_offset_);
}

RecvStream::~RecvStream() {
  // Park whatever reassembly storage the stream still holds (sessions can
  // end with gaps outstanding) so the next stream on this loop reuses it.
  for (auto it = segments_.begin(); it != segments_.end();) {
    it = retire_segment(it);
  }
}

void RecvStream::store_segment(uint64_t key, std::span<const uint8_t> bytes) {
  auto it = segments_.find(key);
  if (it != segments_.end()) {
    it->second.assign(bytes.begin(), bytes.end());
    return;
  }
  if (cache_ != nullptr && !cache_->graveyard.empty()) {
    auto node = cache_->graveyard.extract(cache_->graveyard.begin());
    node.key() = key;
    node.mapped().assign(bytes.begin(), bytes.end());
    segments_.insert(std::move(node));
    return;
  }
  segments_[key].assign(bytes.begin(), bytes.end());
}

RecvStream::SegmentMap::iterator RecvStream::retire_segment(
    SegmentMap::iterator it) {
  if (cache_ != nullptr &&
      cache_->graveyard.size() < RecvSegmentCache::kMaxNodes) {
    auto next = std::next(it);
    auto node = segments_.extract(it);
    node.key() = cache_->next_key++;
    cache_->graveyard.insert(std::move(node));
    return next;
  }
  return segments_.erase(it);
}

void RecvStream::on_frame(uint64_t offset, std::span<const uint8_t> data,
                          bool fin) {
  if (fin) fin_offset_ = offset + data.size();
  highest_seen_ = std::max(highest_seen_, offset + data.size());

  if (!data.empty() && offset + data.size() > contiguous_) {
    // Trim the already-delivered prefix.
    size_t skip = 0;
    if (offset < contiguous_) skip = contiguous_ - offset;
    if (offset <= contiguous_ && segments_.empty()) {
      // Zero-copy fast path: in-order data with nothing buffered delivers
      // the borrowed span straight through — the common case by far.  The
      // bytes, callback count and fin flag match the buffered path exactly.
      std::span<const uint8_t> fresh = data.subspan(skip);
      contiguous_ = offset + data.size();
      const bool at_fin = fin_offset_ && contiguous_ >= *fin_offset_;
      if (on_data_) on_data_(fresh, at_fin);
      return;
    }
    // Out-of-order (or behind buffered data): copy into the reassembly
    // map.  This is the single copy point on the receive path.
    store_segment(offset + skip, data.subspan(skip));
  }

  // Advance the contiguous prefix and deliver.
  auto it = segments_.begin();
  while (it != segments_.end() && it->first <= contiguous_) {
    const uint64_t seg_end = it->first + it->second.size();
    if (seg_end > contiguous_) {
      const size_t skip = contiguous_ - it->first;
      std::span<const uint8_t> fresh(it->second.data() + skip,
                                     it->second.size() - skip);
      contiguous_ = seg_end;
      const bool at_fin = fin_offset_ && contiguous_ >= *fin_offset_;
      if (on_data_) on_data_(fresh, at_fin);
    }
    it = retire_segment(it);
  }
  if (fin_offset_ && contiguous_ >= *fin_offset_ && data.empty() &&
      offset >= contiguous_) {
    // Bare FIN at the current edge.
    if (on_data_) on_data_({}, true);
  }
}

}  // namespace wira::quic
