// QUIC connection: handshake state machine (0-RTT and 1-RTT), streams,
// ACK generation, loss recovery (packet + time thresholds, PTO), pacing,
// and the pluggable congestion controller.
//
// The class is transport-only: it neither knows about FLV nor about Wira's
// policies.  Wira plugs in through three seams, mirroring its LSQUIC
// implementation (§V):
//   - set_initial_parameters()      <- send-controller initialization
//   - the HQST tag in CHLO          <- surfaced via on_handshake_message
//   - HxQosFrame packets (0x1f)     <- send_hxqos / on_hxqos
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cc/bandwidth_sampler.h"
#include "cc/congestion_controller.h"
#include "net/clock.h"
#include "quic/handshake.h"
#include "quic/packet.h"
#include "quic/pacer.h"
#include "quic/rtt.h"
#include "quic/stream.h"
#include "quic/types.h"
#include "sim/event_loop.h"
#include "trace/tracer.h"

namespace wira::quic {

struct ConnectionConfig {
  bool is_server = false;
  ConnectionId conn_id = 1;
  cc::CcAlgo cc_algo = cc::CcAlgo::kBbrV1;
  TimeNs max_ack_delay = kMaxAckDelay;
  int ack_packet_tolerance = 2;  ///< ack every Nth retransmittable packet
  size_t pacer_burst = 2;
};

struct ConnStats {
  uint64_t packets_sent = 0;
  uint64_t data_packets_sent = 0;  ///< ack-eliciting only
  uint64_t packets_received = 0;
  uint64_t packets_acked = 0;
  uint64_t packets_lost = 0;
  uint64_t ptos_fired = 0;
  uint64_t bytes_sent = 0;
  uint64_t stream_bytes_sent = 0;
  uint64_t stream_bytes_retransmitted = 0;
  /// Datagrams that failed packet parsing (dropped before any processing;
  /// anomaly-trigger input for the flight recorder).
  uint64_t packets_undecodable = 0;
  /// Server-side RTT measured across the REJ -> full-CHLO exchange
  /// (only available on 1-RTT connections — the paper's §VI distinction).
  TimeNs handshake_rtt = kNoTime;
};

class Connection {
 public:
  using SendDatagramFn = std::function<void(std::vector<uint8_t>)>;
  using StreamDataFn = std::function<void(StreamId, std::span<const uint8_t>,
                                          bool fin)>;
  using HandshakeMsgFn = std::function<void(const HandshakeMessage&)>;
  using HxQosFn = std::function<void(const HxQosFrame&)>;
  using EstablishedFn = std::function<void()>;

  Connection(sim::EventLoop& loop, ConnectionConfig config,
             SendDatagramFn send_datagram);
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ---- wiring ----
  void set_on_stream_data(StreamDataFn fn) { on_stream_data_ = std::move(fn); }
  void set_on_handshake_message(HandshakeMsgFn fn) {
    on_handshake_message_ = std::move(fn);
  }
  void set_on_established(EstablishedFn fn) {
    on_established_ = std::move(fn);
  }
  void set_on_hxqos(HxQosFn fn) { on_hxqos_ = std::move(fn); }

  // ---- client role ----
  struct ClientConnectOptions {
    /// Cached server config id; presence enables 0-RTT.
    std::optional<std::vector<uint8_t>> server_config_id;
    /// Wira transport cookie to echo in the CHLO (HQST tag).
    std::optional<HqstPayload> hqst;
  };
  void connect(const ClientConnectOptions& opts);

  // ---- server role ----
  struct ServerOptions {
    std::vector<uint8_t> server_config_id = {0xAB, 0xCD};
  };
  void set_server_options(ServerOptions opts) { server_opts_ = std::move(opts); }

  // ---- data plane ----
  void write_stream(StreamId id, std::span<const uint8_t> data,
                    bool fin = false);
  /// Sends a Wira Hx_QoS synchronization packet (type 0x1f).
  void send_hxqos(const HxQosFrame& frame);
  void close(uint64_t error_code, std::string reason);

  /// Feeds a received datagram (wired to the Link delivery callback).
  void on_datagram(std::span<const uint8_t> data);

  // ---- state & introspection ----
  bool established() const { return established_; }
  bool closed() const { return closed_; }
  /// True when the connection completed its handshake without a round trip
  /// (client: cached config used; server: no REJ was needed).
  bool zero_rtt() const { return zero_rtt_; }

  cc::CongestionController& congestion() { return *cc_; }
  const cc::CongestionController& congestion() const { return *cc_; }
  const RttEstimator& rtt() const { return rtt_; }
  const ConnStats& stats() const { return stats_; }
  uint64_t bytes_in_flight() const { return bytes_in_flight_; }
  sim::EventLoop& loop() { return loop_; }

  // ---- Wira hooks ----
  /// Forwards to the congestion controller (send-controller init, §IV-C).
  void set_initial_parameters(uint64_t init_cwnd, Bandwidth init_pacing) {
    cc_->set_initial_parameters(init_cwnd, init_pacing);
    trace(trace::EventType::kInitApplied, init_cwnd, init_pacing);
    trace_cc_state();
  }
  /// Seeds the RTT estimator (e.g. from Hx_QoS MinRTT or the 1-RTT
  /// handshake measurement) so PTO and pacing fallbacks are sane.
  void seed_rtt(TimeNs rtt_sample) { rtt_.seed(rtt_sample); }

  /// Attaches an event tracer (nullptr detaches).  The connection does
  /// not own it; it must outlive the connection's activity.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Overrides the connection's time source (nullptr = loop clock, the
  /// default and the simulation behaviour).  The real-socket runtime
  /// passes a net::MonotonicClock so timestamps — RTT samples, pacer
  /// gating, trace times — read the kernel clock at the instant of the
  /// call instead of the loop's last-advance time.  The override must
  /// share the loop's timebase (net/clock.h) and outlive the connection.
  void set_clock(const net::Clock* clock) { clock_ = clock; }

 private:
  struct StreamRef {
    StreamId stream_id;
    uint64_t offset;
    uint64_t length;
    bool fin;
  };
  struct SentPacketInfo {
    TimeNs sent_time = 0;
    uint64_t bytes = 0;
    bool retransmittable = false;
    std::vector<StreamRef> stream_refs;
    std::vector<uint8_t> crypto_data;  ///< handshake message to re-send
  };
  using SentMap = std::map<PacketNumber, SentPacketInfo>;

  // Handshake machinery.
  void send_crypto_message(const HandshakeMessage& msg,
                           PacketType packet_type);
  void handle_crypto(const CryptoFrame& frame);
  void handle_client_hello(const HandshakeMessage& chlo);
  void handle_rej(const HandshakeMessage& rej);
  void handle_shlo(const HandshakeMessage& shlo);
  void become_established();

  // Send machinery.
  SendStream& send_stream(StreamId id);
  RecvStream& recv_stream(StreamId id);
  bool has_pending_stream_data() const;
  void pump();                       ///< sends as much as cc/pacer allow
  void schedule_pump_at(TimeNs when);
  PacketNumber send_packet(Packet packet, bool bypass_pacer);
  void maybe_send_ack(bool immediate);
  void send_ack_now();

  // Receive machinery.
  void handle_ack(const AckFrame& ack);
  void handle_stream(const StreamFrame& frame);
  void detect_losses(PacketNumber largest_acked,
                     std::vector<cc::LostPacket>& lost);
  void on_packet_lost_internal(PacketNumber pn, const SentPacketInfo& info);

  // Timers.
  void arm_pto();
  void on_pto();
  void arm_loss_timer(TimeNs when);
  void on_loss_timer();
  void cancel_timer(std::optional<sim::EventId>& id);

  // sent_ node recycling: per-packet tracking reuses extracted map nodes
  // (and the stream_refs/crypto_data capacity inside them), so the
  // steady-state send path performs no heap allocation.
  /// Inserts `pn` with a recycled (or fresh) slot and returns it; caller
  /// fills the fields.  Vectors in the slot are cleared, not shrunk.
  SentPacketInfo& acquire_sent_slot(PacketNumber pn);
  /// Erases `*it`, stashing its node for reuse; returns the next iterator.
  SentMap::iterator release_sent_node(SentMap::iterator it);

  /// Current time through the optional clock override (see set_clock).
  TimeNs now() const { return clock_ != nullptr ? clock_->now() : loop_.now(); }

  sim::EventLoop& loop_;
  const net::Clock* clock_ = nullptr;
  ConnectionConfig config_;
  SendDatagramFn send_datagram_;

  StreamDataFn on_stream_data_;
  HandshakeMsgFn on_handshake_message_;
  EstablishedFn on_established_;
  HxQosFn on_hxqos_;

  std::unique_ptr<cc::CongestionController> cc_;
  cc::BandwidthSampler sampler_;
  RttEstimator rtt_;
  Pacer pacer_;

  // Role / handshake state.
  ServerOptions server_opts_;
  std::optional<HqstPayload> pending_hqst_;
  bool established_ = false;
  bool closed_ = false;
  bool zero_rtt_ = false;
  bool rej_sent_ = false;
  bool rej_processed_ = false;
  TimeNs rej_sent_time_ = kNoTime;
  TimeNs chlo_sent_time_ = kNoTime;

  // Packet number spaces (single space).
  PacketNumber next_packet_number_ = 1;
  SentMap sent_;  ///< retransmittable only
  std::vector<SentMap::node_type> free_sent_nodes_;
  /// Per-packet scratch for non-retransmittable sends (never stored).
  SentPacketInfo scratch_sent_info_;
  uint64_t bytes_in_flight_ = 0;
  PacketNumber largest_acked_ = 0;

  // Receiving.
  RangeSet received_;
  PacketNumber largest_received_ = 0;
  int unacked_retransmittable_ = 0;
  bool ack_pending_ = false;
  TimeNs oldest_unacked_recv_time_ = kNoTime;

  // Streams.
  std::map<StreamId, SendStream> send_streams_;
  std::map<StreamId, RecvStream> recv_streams_;

  // Timers.
  std::optional<sim::EventId> ack_timer_;
  std::optional<sim::EventId> loss_timer_;
  std::optional<sim::EventId> pto_timer_;
  std::optional<sim::EventId> send_timer_;
  int pto_count_ = 0;

  /// Reused across acks/loss-timer firings so the acked/lost vectors keep
  /// their capacity instead of heap-allocating per ACK.  Every field is
  /// re-set at each use site.
  cc::CongestionEvent scratch_event_;

  trace::Tracer* tracer_ = nullptr;
  const char* last_cc_state_ = nullptr;  ///< last state traced (literal)
  void trace(trace::EventType type, uint64_t a = 0, uint64_t b = 0,
             std::string detail = {}) {
    if (tracer_) tracer_->record(now(), type, a, b, std::move(detail));
  }
  /// Emits kCcStateChanged when the controller's state-machine position
  /// moved since the last call (first call emits the initial state).
  void trace_cc_state();

  ConnStats stats_;
};

}  // namespace wira::quic
