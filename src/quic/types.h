// Core QUIC-dialect constants and identifiers.
//
// The stack models the user-space gQUIC lineage the paper builds on
// (LSQUIC Q043): a tag-value crypto handshake (CHLO/REJ/SHLO), a single
// packet-number space, stream frames, and QUIC-style loss recovery.  It is
// intentionally simplified — no TLS, no flow control windows beyond the
// congestion controller — while keeping every extension point Wira touches.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace wira::quic {

using ConnectionId = uint64_t;
using StreamId = uint64_t;
using PacketNumber = uint64_t;

/// Maximum packet payload (frames) per datagram; aligned with cc::kMss.
inline constexpr size_t kMaxPacketPayload = 1400;
/// Approximate per-datagram header overhead we account to the wire.
inline constexpr size_t kPacketOverhead = 60;

/// Stream used by the client to send its play request.
inline constexpr StreamId kRequestStream = 1;
/// Stream used by the server to push the live-stream response.
inline constexpr StreamId kResponseStream = 3;

/// Packet types (first header byte).
enum class PacketType : uint8_t {
  kInitial = 0x01,    ///< carries CHLO / REJ / SHLO crypto messages
  kZeroRtt = 0x03,    ///< 0-RTT application data
  kOneRtt = 0x04,     ///< established-path application data
  kHxQos = 0x1f,      ///< Wira Hx_QoS synchronization packet (§IV-B)
};

/// Loss-detection constants (RFC 9002 defaults).
inline constexpr int kPacketReorderingThreshold = 3;
inline constexpr double kTimeReorderingFraction = 9.0 / 8.0;
inline constexpr TimeNs kInitialRtt = milliseconds(100);
inline constexpr TimeNs kGranularity = milliseconds(1);
inline constexpr TimeNs kMaxAckDelay = milliseconds(25);

}  // namespace wira::quic
