// Departure-time pacer.  The send controller asks when the next packet may
// leave; each transmission pushes the release time forward by size/rate.
// A small burst allowance (2 packets) absorbs timer quantization without
// defeating pacing — initial-rate behaviour is exactly what Wira tunes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/units.h"

namespace wira::quic {

class Pacer {
 public:
  explicit Pacer(size_t burst_packets = 2)
      : max_burst_(burst_packets), burst_tokens_(burst_packets) {}

  /// Earliest time a packet of any size may be released.
  TimeNs next_release_time() const { return next_release_; }

  /// A packet may leave if either the serializer debt is paid off or a
  /// burst token remains (tokens let a flight start without timer jitter).
  bool can_send(TimeNs now) const {
    return burst_tokens_ > 0 || next_release_ <= now;
  }

  void on_packet_sent(TimeNs now, uint64_t bytes, Bandwidth rate) {
    if (rate == 0) return;  // unpaced
    const TimeNs tx = transfer_time(bytes, rate);
    next_release_ = (next_release_ > now ? next_release_ : now) + tx;
    if (burst_tokens_ > 0) burst_tokens_--;
  }

  /// Restores the burst allowance after an idle period.
  void on_idle(TimeNs now) {
    if (next_release_ <= now) burst_tokens_ = max_burst_;
  }

 private:
  size_t max_burst_;
  size_t burst_tokens_;
  TimeNs next_release_ = 0;
};

}  // namespace wira::quic
