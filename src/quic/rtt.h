// RFC 9002 RTT estimator: latest / smoothed / variance / minimum.
#pragma once

#include <algorithm>

#include "quic/types.h"
#include "util/units.h"

namespace wira::quic {

class RttEstimator {
 public:
  void on_sample(TimeNs rtt, TimeNs ack_delay) {
    latest_ = rtt;
    if (min_ == kNoTime || rtt < min_) min_ = rtt;
    // Subtract ack delay unless it would take us below the minimum.
    TimeNs adjusted = rtt;
    if (adjusted > min_ + ack_delay) adjusted -= ack_delay;
    if (smoothed_ == kNoTime) {
      smoothed_ = adjusted;
      var_ = adjusted / 2;
      return;
    }
    const TimeNs delta =
        smoothed_ > adjusted ? smoothed_ - adjusted : adjusted - smoothed_;
    var_ = (3 * var_ + delta) / 4;
    smoothed_ = (7 * smoothed_ + adjusted) / 8;
  }

  bool has_sample() const { return smoothed_ != kNoTime; }
  TimeNs latest() const { return latest_; }
  TimeNs smoothed() const { return smoothed_; }
  TimeNs variance() const { return var_; }
  TimeNs min() const { return min_; }

  /// Seeds the estimator before any sample exists (1-RTT handshake
  /// measurement, or Wira's Hx_QoS MinRTT for corner-case pacing).
  void seed(TimeNs rtt) {
    if (has_sample()) return;
    smoothed_ = rtt;
    var_ = rtt / 2;
    latest_ = rtt;
    if (min_ == kNoTime || rtt < min_) min_ = rtt;
  }

  /// Probe timeout per RFC 9002 (without packet-number-space subtleties).
  TimeNs pto(TimeNs max_ack_delay) const {
    if (!has_sample()) return 2 * kInitialRtt;
    return smoothed_ + std::max<TimeNs>(4 * var_, kGranularity) +
           max_ack_delay;
  }

 private:
  TimeNs latest_ = kNoTime;
  TimeNs smoothed_ = kNoTime;
  TimeNs var_ = 0;
  TimeNs min_ = kNoTime;
};

}  // namespace wira::quic
