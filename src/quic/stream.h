// Stream send/receive machinery.
//
// SendStream keeps the full byte buffer for the life of the stream (live
// sessions are a few MB at most) so retransmissions can always re-read the
// original bytes; ranges are tracked with RangeSet.  RecvStream reassembles
// out-of-order frames and delivers the contiguous prefix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "quic/range_set.h"
#include "quic/types.h"

namespace wira::quic {

class SendStream {
 public:
  explicit SendStream(StreamId id) : id_(id) {}

  StreamId id() const { return id_; }

  /// Appends application data; returns the starting offset.
  uint64_t write(std::span<const uint8_t> data, bool fin = false);

  bool has_data_to_send() const;

  /// Next chunk to transmit (retransmissions take priority over new data);
  /// at most `max_len` bytes.  Returns nullopt when idle.  `data` borrows
  /// from the stream's retained buffer: valid until the next write() (which
  /// may reallocate), which is fine for the synchronous pack-and-serialize
  /// in Connection::pump.
  struct Chunk {
    uint64_t offset = 0;
    std::span<const uint8_t> data;
    bool fin = false;
  };
  std::optional<Chunk> next_chunk(uint64_t max_len);

  /// Marks [offset, offset+len) acked.
  void on_range_acked(uint64_t offset, uint64_t len, bool fin_acked);

  /// Marks [offset, offset+len) lost -> queued for retransmission
  /// (already-acked bytes are skipped).
  void on_range_lost(uint64_t offset, uint64_t len, bool fin_lost);

  uint64_t bytes_written() const { return buffer_.size(); }
  uint64_t next_new_offset() const { return next_offset_; }
  bool fin_written() const { return fin_written_; }
  bool all_acked() const;

  /// Bytes queued for (re)transmission right now.
  uint64_t pending_bytes() const;

 private:
  StreamId id_;
  std::vector<uint8_t> buffer_;   ///< every byte ever written
  uint64_t next_offset_ = 0;      ///< first never-sent byte
  RangeSet retx_;                 ///< lost, needs resend
  RangeSet acked_;
  bool fin_written_ = false;
  bool fin_needs_send_ = false;
  bool fin_acked_ = false;
};

/// Cross-stream recycler for RecvStream's reassembly storage.  Retired
/// segment map nodes park here (keyed by a throwaway counter) and are
/// re-keyed on reuse, so steady-state out-of-order reassembly allocates
/// neither map nodes nor byte buffers — the parked vectors keep their
/// capacity.  One per event loop (EventLoop::scratch) shared by every
/// stream of every connection on it; values are always fully overwritten
/// before reuse, so recycling never changes behaviour.
struct RecvSegmentCache {
  /// Bounds parked memory (nodes above the cap are simply freed).
  static constexpr size_t kMaxNodes = 256;

  std::map<uint64_t, std::vector<uint8_t>> graveyard;
  uint64_t next_key = 0;
};

class RecvStream {
 public:
  /// Callback invoked with each newly contiguous data segment, in order.
  using DataFn =
      std::function<void(std::span<const uint8_t> data, bool fin)>;

  explicit RecvStream(StreamId id, RecvSegmentCache* cache = nullptr)
      : id_(id), cache_(cache) {}
  ~RecvStream();
  RecvStream(RecvStream&&) = default;
  RecvStream& operator=(RecvStream&&) = default;

  StreamId id() const { return id_; }
  void set_on_data(DataFn fn) { on_data_ = std::move(fn); }

  void on_frame(uint64_t offset, std::span<const uint8_t> data, bool fin);

  uint64_t contiguous_bytes() const { return contiguous_; }
  uint64_t highest_seen() const { return highest_seen_; }
  bool finished() const { return fin_offset_ && contiguous_ >= *fin_offset_; }

 private:
  using SegmentMap = std::map<uint64_t, std::vector<uint8_t>>;

  /// segments_[key] = bytes, preferring a node recycled from the cache.
  void store_segment(uint64_t key, std::span<const uint8_t> bytes);
  /// Erases `it`, parking its node (and buffer capacity) in the cache.
  SegmentMap::iterator retire_segment(SegmentMap::iterator it);

  StreamId id_;
  DataFn on_data_;
  uint64_t contiguous_ = 0;
  uint64_t highest_seen_ = 0;
  std::optional<uint64_t> fin_offset_;
  SegmentMap segments_;                 ///< offset -> bytes
  RecvSegmentCache* cache_ = nullptr;   ///< not owned; may be null
};

}  // namespace wira::quic
