// Set of disjoint closed uint64 ranges, used for received packet numbers,
// acked stream bytes and retransmission scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace wira::quic {

/// Closed interval [lo, hi].
struct Range {
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint64_t length() const { return hi - lo + 1; }
  bool operator==(const Range&) const = default;
};

class RangeSet {
 public:
  /// Adds [lo, hi] (inclusive), merging with neighbours.
  void add(uint64_t lo, uint64_t hi);
  void add(uint64_t v) { add(v, v); }

  /// Removes [lo, hi] from the set (splitting ranges as needed).
  void subtract(uint64_t lo, uint64_t hi);

  bool contains(uint64_t v) const;
  bool empty() const { return ranges_.empty(); }
  size_t size() const { return ranges_.size(); }
  uint64_t total_length() const;

  uint64_t min() const { return ranges_.begin()->first; }
  uint64_t max() const { return ranges_.rbegin()->second; }

  /// Ranges in ascending order.
  std::vector<Range> ascending() const;
  /// Ranges in descending order (ACK frame layout).
  std::vector<Range> descending() const;

  /// Visits up to `max_ranges` ranges in descending order without
  /// materializing a vector (the ACK build path calls this per ack).
  template <typename Fn>
  void visit_descending(Fn&& fn, size_t max_ranges = SIZE_MAX) const {
    size_t n = 0;
    for (auto it = ranges_.rbegin(); it != ranges_.rend() && n < max_ranges;
         ++it, ++n) {
      fn(Range{it->first, it->second});
    }
  }

  /// Pops up to `max_len` values from the lowest range; returns the popped
  /// range (length 0 length field == 0 means empty -> check before).
  Range pop_front(uint64_t max_len);

  void clear() { ranges_.clear(); }

 private:
  std::map<uint64_t, uint64_t> ranges_;  ///< lo -> hi, disjoint, gaps >= 2
};

}  // namespace wira::quic
