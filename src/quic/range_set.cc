#include "quic/range_set.h"

#include <algorithm>

namespace wira::quic {

void RangeSet::add(uint64_t lo, uint64_t hi) {
  if (hi < lo) return;
  // Find the first range that could merge with [lo, hi]: any range whose
  // hi >= lo-1 and whose lo <= hi+1.
  auto it = ranges_.lower_bound(lo);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second + 1 >= lo && prev->second != UINT64_MAX) {
      it = prev;
    } else if (prev->second >= lo) {
      it = prev;
    }
  }
  uint64_t new_lo = lo, new_hi = hi;
  // `keep` is the first merged node whose key already equals the merged
  // lo: it is extended in place instead of erase+reinsert, so the common
  // contiguous-append case (every received packet) allocates nothing.
  auto keep = ranges_.end();
  while (it != ranges_.end() && it->first <= (hi == UINT64_MAX ? hi : hi + 1)) {
    if (it->second + 1 < lo && it->second != UINT64_MAX) {
      ++it;
      continue;
    }
    new_lo = std::min(new_lo, it->first);
    new_hi = std::max(new_hi, it->second);
    if (keep == ranges_.end() && it->first == new_lo) {
      keep = it++;
    } else {
      it = ranges_.erase(it);
    }
  }
  if (keep != ranges_.end()) {
    keep->second = new_hi;
  } else {
    ranges_[new_lo] = new_hi;
  }
}

void RangeSet::subtract(uint64_t lo, uint64_t hi) {
  if (hi < lo) return;
  auto it = ranges_.lower_bound(lo);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) it = prev;
  }
  while (it != ranges_.end() && it->first <= hi) {
    const uint64_t r_lo = it->first, r_hi = it->second;
    if (r_hi < lo) {
      ++it;
      continue;
    }
    it = ranges_.erase(it);
    if (r_lo < lo) ranges_[r_lo] = lo - 1;  // left remainder: before `it`
    if (r_hi > hi) {
      ranges_[hi + 1] = r_hi;  // right remainder: nothing further overlaps
      break;
    }
  }
}

bool RangeSet::contains(uint64_t v) const {
  auto it = ranges_.upper_bound(v);
  if (it == ranges_.begin()) return false;
  --it;
  return it->first <= v && v <= it->second;
}

uint64_t RangeSet::total_length() const {
  uint64_t n = 0;
  for (const auto& [lo, hi] : ranges_) n += hi - lo + 1;
  return n;
}

std::vector<Range> RangeSet::ascending() const {
  std::vector<Range> out;
  out.reserve(ranges_.size());
  for (const auto& [lo, hi] : ranges_) out.push_back({lo, hi});
  return out;
}

std::vector<Range> RangeSet::descending() const {
  auto out = ascending();
  std::reverse(out.begin(), out.end());
  return out;
}

Range RangeSet::pop_front(uint64_t max_len) {
  Range r{};
  if (ranges_.empty() || max_len == 0) return r;
  auto it = ranges_.begin();
  r.lo = it->first;
  const uint64_t avail = it->second - it->first + 1;
  const uint64_t take = std::min<uint64_t>(avail, max_len);
  r.hi = r.lo + take - 1;
  if (take == avail) {
    ranges_.erase(it);
  } else {
    const uint64_t hi = it->second;
    ranges_.erase(it);
    ranges_[r.hi + 1] = hi;
  }
  return r;
}

}  // namespace wira::quic
