#include "quic/handshake.h"

namespace wira::quic {

std::span<const uint8_t> HandshakeMessage::get(uint32_t tag) const {
  auto it = values.find(tag);
  if (it == values.end()) return {};
  return it->second;
}

void HandshakeMessage::set(uint32_t tag, std::span<const uint8_t> value) {
  values[tag].assign(value.begin(), value.end());
}

void HandshakeMessage::set_u64(uint32_t tag, uint64_t value) {
  ByteWriter w;
  w.u64be(value);
  values[tag] = w.take();
}

std::optional<uint64_t> HandshakeMessage::get_u64(uint32_t tag) const {
  auto it = values.find(tag);
  if (it == values.end() || it->second.size() != 8) return std::nullopt;
  ByteReader r(it->second);
  return r.u64be();
}

void HandshakeMessage::set_str(uint32_t tag, std::string_view s) {
  values[tag].assign(s.begin(), s.end());
}

std::vector<uint8_t> serialize_handshake(const HandshakeMessage& msg) {
  ByteWriter w;
  w.u32be(msg.msg_tag);
  w.u16be(static_cast<uint16_t>(msg.values.size()));
  w.u16be(0);  // reserved
  uint32_t end = 0;
  for (const auto& [tag, value] : msg.values) {
    end += static_cast<uint32_t>(value.size());
    w.u32be(tag);
    w.u32be(end);
  }
  for (const auto& [tag, value] : msg.values) w.bytes(value);
  return w.take();
}

std::optional<HandshakeMessage> parse_handshake(
    std::span<const uint8_t> data) {
  ByteReader r(data);
  HandshakeMessage msg;
  msg.msg_tag = r.u32be();
  const uint16_t n = r.u16be();
  r.u16be();  // reserved
  if (!r.ok() || n > 128) return std::nullopt;
  std::vector<std::pair<uint32_t, uint32_t>> index;
  index.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    const uint32_t tag = r.u32be();
    const uint32_t end = r.u32be();
    index.emplace_back(tag, end);
  }
  if (!r.ok()) return std::nullopt;
  uint32_t start = 0;
  for (const auto& [tag, end] : index) {
    if (end < start) return std::nullopt;
    auto v = r.bytes(end - start);
    if (!r.ok()) return std::nullopt;
    msg.values[tag].assign(v.begin(), v.end());
    start = end;
  }
  return msg;
}

std::vector<uint8_t> serialize_hqst(const HqstPayload& p) {
  ByteWriter w;
  w.u8(p.supports_sync ? 1 : 0);
  w.u64be(p.client_recv_time_ms);
  w.bytes(p.sealed_cookie);
  return w.take();
}

std::optional<HqstPayload> parse_hqst(std::span<const uint8_t> data) {
  ByteReader r(data);
  HqstPayload p;
  p.supports_sync = r.u8() != 0;
  p.client_recv_time_ms = r.u64be();
  if (!r.ok()) return std::nullopt;
  auto rest = r.bytes(r.remaining());
  p.sealed_cookie.assign(rest.begin(), rest.end());
  return p;
}

}  // namespace wira::quic
