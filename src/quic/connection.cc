#include "quic/connection.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace wira::quic {

Connection::Connection(sim::EventLoop& loop, ConnectionConfig config,
                       SendDatagramFn send_datagram)
    : loop_(loop),
      config_(config),
      send_datagram_(std::move(send_datagram)),
      cc_(cc::make_controller(config.cc_algo)),
      pacer_(config.pacer_burst) {}

// ---------------------------------------------------------------- handshake

void Connection::connect(const ClientConnectOptions& opts) {
  pending_hqst_ = opts.hqst;
  HandshakeMessage chlo;
  chlo.msg_tag = kTagCHLO;
  chlo.set_str(kTagVER, "Q043");
  if (opts.hqst) chlo.set(kTagHQST, serialize_hqst(*opts.hqst));
  if (opts.server_config_id) {
    // Full CHLO: 0-RTT path.
    chlo.set(kTagSCID, *opts.server_config_id);
    zero_rtt_ = true;
    send_crypto_message(chlo, PacketType::kInitial);
    become_established();
  } else {
    // Inchoate CHLO: expect REJ carrying the server config.
    chlo_sent_time_ = now();
    send_crypto_message(chlo, PacketType::kInitial);
  }
}

void Connection::send_crypto_message(const HandshakeMessage& msg,
                                     PacketType packet_type) {
  // The frame borrows `wire`; send_packet serializes synchronously (and
  // copies the crypto bytes into SentPacketInfo), so the local suffices.
  const std::vector<uint8_t> wire = serialize_handshake(msg);
  CryptoFrame frame;
  frame.data = wire;

  Packet p(&loop_.arena());
  p.type = packet_type;
  p.conn_id = config_.conn_id;
  if (ack_pending_) {
    p.frames.push_back(build_ack(received_, 0, 32, &loop_.arena()));
    ack_pending_ = false;
    unacked_retransmittable_ = 0;
    cancel_timer(ack_timer_);
  }
  p.frames.emplace_back(frame);
  send_packet(std::move(p), /*bypass_pacer=*/true);
}

void Connection::handle_crypto(const CryptoFrame& frame) {
  auto msg = parse_handshake(frame.data);
  if (!msg) return;
  if (tracer_) {
    const char* name = msg->msg_tag == kTagCHLO   ? "chlo"
                       : msg->msg_tag == kTagREJ  ? "rej"
                       : msg->msg_tag == kTagSHLO ? "shlo"
                                                  : "unknown";
    trace(trace::EventType::kHandshakeEvent, 0, 0, name);
  }
  if (on_handshake_message_) on_handshake_message_(*msg);
  switch (msg->msg_tag) {
    case kTagCHLO:
      if (config_.is_server) handle_client_hello(*msg);
      break;
    case kTagREJ:
      if (!config_.is_server) handle_rej(*msg);
      break;
    case kTagSHLO:
      if (!config_.is_server) handle_shlo(*msg);
      break;
    default:
      break;
  }
}

void Connection::handle_client_hello(const HandshakeMessage& chlo) {
  const auto scid = chlo.get(kTagSCID);
  const bool full =
      !scid.empty() &&
      std::equal(scid.begin(), scid.end(),
                 server_opts_.server_config_id.begin(),
                 server_opts_.server_config_id.end());
  if (!full) {
    // Reject: ship the server config; the client retries with a full CHLO.
    HandshakeMessage rej;
    rej.msg_tag = kTagREJ;
    rej.set(kTagSCID, server_opts_.server_config_id);
    rej.set_str(kTagSCFG, "scfg-v1");
    rej_sent_ = true;
    rej_sent_time_ = now();
    send_crypto_message(rej, PacketType::kInitial);
    return;
  }
  if (established_) return;  // duplicate full CHLO

  if (rej_sent_) {
    // 1-RTT: the REJ -> full-CHLO exchange measures the path RTT before
    // any payload is sent (§VI: "1-RTT connections can obtain the
    // accurate MinRTT").
    stats_.handshake_rtt = now() - rej_sent_time_;
    rtt_.seed(stats_.handshake_rtt);
    zero_rtt_ = false;
  } else {
    zero_rtt_ = true;
  }

  HandshakeMessage shlo;
  shlo.msg_tag = kTagSHLO;
  send_crypto_message(shlo, PacketType::kInitial);
  become_established();
}

void Connection::handle_rej(const HandshakeMessage& rej) {
  if (rej_processed_) return;
  rej_processed_ = true;
  const auto scid = rej.get(kTagSCID);
  if (scid.empty()) return;
  if (chlo_sent_time_ != kNoTime) {
    rtt_.on_sample(now() - chlo_sent_time_, 0);
  }
  // A REJ after a 0-RTT attempt means the cached config was stale: retry
  // with the fresh one (any 0-RTT data already queued is retransmitted by
  // the normal loss machinery).
  zero_rtt_ = false;
  HandshakeMessage chlo;
  chlo.msg_tag = kTagCHLO;
  chlo.set_str(kTagVER, "Q043");
  chlo.set(kTagSCID, scid);
  if (pending_hqst_) chlo.set(kTagHQST, serialize_hqst(*pending_hqst_));
  send_crypto_message(chlo, PacketType::kInitial);
  become_established();
}

void Connection::handle_shlo(const HandshakeMessage&) {
  if (!established_) become_established();
}

void Connection::become_established() {
  established_ = true;
  trace(trace::EventType::kHandshakeEvent, zero_rtt_ ? 0 : 1, 0,
        "established");
  if (on_established_) on_established_();
  pump();
}

// --------------------------------------------------------------- data plane

SendStream& Connection::send_stream(StreamId id) {
  auto it = send_streams_.find(id);
  if (it == send_streams_.end()) {
    it = send_streams_.emplace(id, SendStream(id)).first;
  }
  return it->second;
}

RecvStream& Connection::recv_stream(StreamId id) {
  auto it = recv_streams_.find(id);
  if (it == recv_streams_.end()) {
    it = recv_streams_
             .emplace(id, RecvStream(id, &loop_.scratch<RecvSegmentCache>()))
             .first;
    it->second.set_on_data(
        [this, id](std::span<const uint8_t> data, bool fin) {
          if (on_stream_data_) on_stream_data_(id, data, fin);
        });
  }
  return it->second;
}

void Connection::write_stream(StreamId id, std::span<const uint8_t> data,
                              bool fin) {
  if (closed_) return;
  send_stream(id).write(data, fin);
  if (established_) pump();
}

void Connection::send_hxqos(const HxQosFrame& frame) {
  if (closed_) return;
  Packet p(&loop_.arena());
  p.type = PacketType::kHxQos;
  p.conn_id = config_.conn_id;
  p.frames.emplace_back(frame);
  // Small periodic beacon: not paced, but tracked so losses are visible.
  send_packet(std::move(p), /*bypass_pacer=*/true);
}

void Connection::close(uint64_t error_code, std::string reason) {
  if (closed_) return;
  Packet p(&loop_.arena());
  p.type = PacketType::kOneRtt;
  p.conn_id = config_.conn_id;
  p.frames.push_back(ConnectionCloseFrame{error_code, std::move(reason)});
  send_packet(std::move(p), /*bypass_pacer=*/true);
  closed_ = true;
  cancel_timer(ack_timer_);
  cancel_timer(loss_timer_);
  cancel_timer(pto_timer_);
  cancel_timer(send_timer_);
}

bool Connection::has_pending_stream_data() const {
  for (const auto& [id, stream] : send_streams_) {
    if (stream.has_data_to_send()) return true;
  }
  return false;
}

void Connection::schedule_pump_at(TimeNs when) {
  if (send_timer_) return;  // already scheduled (monotone release times)
  send_timer_ = loop_.schedule_at(when, [this] {
    send_timer_.reset();
    pump();
  });
}

void Connection::pump() {
  if (closed_ || !established_) return;
  pacer_.on_idle(now());
  while (has_pending_stream_data()) {
    if (bytes_in_flight_ >= cc_->congestion_window()) return;
    if (!pacer_.can_send(now())) {
      schedule_pump_at(pacer_.next_release_time());
      return;
    }

    Packet p(&loop_.arena());
    p.type = zero_rtt_ && config_.is_server == false && !rtt_.has_sample()
                 ? PacketType::kZeroRtt
                 : PacketType::kOneRtt;
    p.conn_id = config_.conn_id;
    size_t budget = kMaxPacketPayload;
    if (ack_pending_) {
      AckFrame ack = build_ack(received_, 0, 32, &loop_.arena());
      budget -= std::min(budget, frame_wire_size(Frame{ack}));
      p.frames.push_back(std::move(ack));
      ack_pending_ = false;
      unacked_retransmittable_ = 0;
      cancel_timer(ack_timer_);
    }
    for (auto& [id, stream] : send_streams_) {
      while (stream.has_data_to_send() && budget > 24) {
        auto chunk = stream.next_chunk(budget - 24);
        if (!chunk) break;
        StreamFrame f;
        f.stream_id = id;
        f.offset = chunk->offset;
        f.fin = chunk->fin;
        f.data = chunk->data;  // borrows the stream's retained buffer
        budget -= std::min(budget, frame_wire_size(Frame{f}));
        p.frames.emplace_back(f);
      }
      if (budget <= 24) break;
    }
    if (p.frames.empty()) break;
    send_packet(std::move(p), /*bypass_pacer=*/false);
  }
  // Everything flushed with window to spare: the sender is app-limited.
  if (bytes_in_flight_ < cc_->congestion_window()) {
    sampler_.on_app_limited();
  }
}

Connection::SentPacketInfo& Connection::acquire_sent_slot(PacketNumber pn) {
  if (!free_sent_nodes_.empty()) {
    auto nh = std::move(free_sent_nodes_.back());
    free_sent_nodes_.pop_back();
    nh.key() = pn;
    return sent_.insert(std::move(nh)).position->second;
  }
  return sent_.emplace(pn, SentPacketInfo{}).first->second;
}

Connection::SentMap::iterator Connection::release_sent_node(
    SentMap::iterator it) {
  auto next = std::next(it);
  free_sent_nodes_.push_back(sent_.extract(it));
  return next;
}

PacketNumber Connection::send_packet(Packet packet, bool bypass_pacer) {
  packet.packet_number = next_packet_number_++;
  const PacketNumber pn = packet.packet_number;

  // Fill the tracking slot in place: retransmittable packets land
  // directly in a recycled sent_ node (vector capacity retained), pure
  // ACKs reuse the scratch slot — no allocation either way.
  const bool retransmittable = packet.retransmittable();
  SentPacketInfo& info =
      retransmittable ? acquire_sent_slot(pn) : scratch_sent_info_;
  info.sent_time = now();
  info.retransmittable = retransmittable;
  info.stream_refs.clear();
  info.crypto_data.clear();
  for (const Frame& f : packet.frames) {
    if (const auto* sf = std::get_if<StreamFrame>(&f)) {
      info.stream_refs.push_back(
          StreamRef{sf->stream_id, sf->offset, sf->data.size(), sf->fin});
      stats_.stream_bytes_sent += sf->data.size();
    } else if (const auto* cf = std::get_if<CryptoFrame>(&f)) {
      // Explicit copy: the span dies with the packet, the retransmit
      // payload must survive in sent_.
      info.crypto_data.assign(cf->data.begin(), cf->data.end());
    }
  }

  auto bytes = serialize_packet(packet, loop_.buffers().acquire());
  info.bytes = bytes.size() + kPacketOverhead;

  stats_.packets_sent++;
  stats_.bytes_sent += info.bytes;
  trace(trace::EventType::kPacketSent, pn, info.bytes);

  if (retransmittable) {
    stats_.data_packets_sent++;
    sampler_.on_packet_sent(now(), pn, info.bytes, bytes_in_flight_);
    bytes_in_flight_ += info.bytes;
    cc_->on_packet_sent(now(), pn, info.bytes, bytes_in_flight_, true);
    if (!bypass_pacer) {
      pacer_.on_packet_sent(now(), info.bytes, cc_->pacing_rate());
    }
    arm_pto();
  }

  send_datagram_(std::move(bytes));
  return pn;
}

// ------------------------------------------------------------------ receive

void Connection::on_datagram(std::span<const uint8_t> data) {
  if (closed_) return;
  // Zero-copy parse: the packet's frame vector and ACK ranges live in the
  // loop's arena, payload spans borrow `data` — nothing below may retain
  // either past this call (RecvStream copies at reassembly, crypto/cookie
  // consumers copy explicitly).
  auto packet = parse_packet(data, &loop_.arena());
  if (!packet) {
    stats_.packets_undecodable++;
    trace(trace::EventType::kDecodeError, data.size());
    return;
  }
  stats_.packets_received++;
  if (received_.contains(packet->packet_number)) return;  // duplicate
  received_.add(packet->packet_number);
  const bool out_of_order = packet->packet_number < largest_received_;
  largest_received_ = std::max(largest_received_, packet->packet_number);

  bool retransmittable = false;
  for (const Frame& f : packet->frames) {
    if (is_retransmittable(f)) retransmittable = true;
    if (const auto* ack = std::get_if<AckFrame>(&f)) {
      handle_ack(*ack);
    } else if (const auto* crypto = std::get_if<CryptoFrame>(&f)) {
      handle_crypto(*crypto);
    } else if (const auto* sf = std::get_if<StreamFrame>(&f)) {
      handle_stream(*sf);
    } else if (const auto* hx = std::get_if<HxQosFrame>(&f)) {
      if (on_hxqos_) on_hxqos_(*hx);
    } else if (std::get_if<ConnectionCloseFrame>(&f)) {
      closed_ = true;
      cancel_timer(ack_timer_);
      cancel_timer(loss_timer_);
      cancel_timer(pto_timer_);
      cancel_timer(send_timer_);
      return;
    }
  }

  if (retransmittable) {
    unacked_retransmittable_++;
    if (oldest_unacked_recv_time_ == kNoTime) {
      oldest_unacked_recv_time_ = now();
    }
    maybe_send_ack(out_of_order ||
                   unacked_retransmittable_ >= config_.ack_packet_tolerance);
  }
}

void Connection::maybe_send_ack(bool immediate) {
  ack_pending_ = true;
  if (immediate) {
    send_ack_now();
    return;
  }
  if (!ack_timer_) {
    ack_timer_ = loop_.schedule_in(config_.max_ack_delay, [this] {
      ack_timer_.reset();
      if (ack_pending_) send_ack_now();
    });
  }
}

void Connection::send_ack_now() {
  TimeNs delay = 0;
  if (oldest_unacked_recv_time_ != kNoTime) {
    delay = now() - oldest_unacked_recv_time_;
  }
  Packet p(&loop_.arena());
  p.type = PacketType::kOneRtt;
  p.conn_id = config_.conn_id;
  p.frames.push_back(build_ack(received_, delay, 32, &loop_.arena()));
  ack_pending_ = false;
  unacked_retransmittable_ = 0;
  oldest_unacked_recv_time_ = kNoTime;
  cancel_timer(ack_timer_);
  send_packet(std::move(p), /*bypass_pacer=*/true);
}

void Connection::handle_stream(const StreamFrame& frame) {
  recv_stream(frame.stream_id).on_frame(frame.offset, frame.data, frame.fin);
}

void Connection::handle_ack(const AckFrame& ack) {
  cc::CongestionEvent& event = scratch_event_;
  event.acked.clear();
  event.lost.clear();
  event.now = now();
  event.prior_bytes_in_flight = bytes_in_flight_;
  event.bandwidth_sample = 0;
  event.app_limited_sample = false;

  PacketNumber largest_newly_acked = 0;
  TimeNs largest_sent_time = kNoTime;
  Bandwidth best_bw = 0;
  bool bw_app_limited = false;

  // Collect newly acked packets.
  for (auto it = sent_.begin(); it != sent_.end();) {
    const PacketNumber pn = it->first;
    if (pn > ack.largest_acked) break;
    if (!ack.covers(pn)) {
      ++it;
      continue;
    }
    const SentPacketInfo& info = it->second;
    event.acked.push_back(cc::AckedPacket{pn, info.bytes, info.sent_time});
    bytes_in_flight_ -= std::min(bytes_in_flight_, info.bytes);
    stats_.packets_acked++;
    if (pn > largest_newly_acked) {
      largest_newly_acked = pn;
      largest_sent_time = info.sent_time;
    }
    const auto sample = sampler_.on_packet_acked(now(), pn);
    if (sample.bandwidth > best_bw) {
      best_bw = sample.bandwidth;
      bw_app_limited = sample.app_limited;
    }
    for (const StreamRef& ref : info.stream_refs) {
      send_stream(ref.stream_id)
          .on_range_acked(ref.offset, ref.length, ref.fin);
    }
    it = release_sent_node(it);
  }

  if (event.acked.empty()) return;
  largest_acked_ = std::max(largest_acked_, ack.largest_acked);
  pto_count_ = 0;

  // RTT sample only when the largest acked packet is newly acked.
  if (largest_newly_acked == ack.largest_acked &&
      largest_sent_time != kNoTime) {
    rtt_.on_sample(now() - largest_sent_time, ack.ack_delay);
  }

  detect_losses(ack.largest_acked, event.lost);

  event.latest_rtt = rtt_.latest();
  event.min_rtt = rtt_.min();
  event.smoothed_rtt = rtt_.smoothed();
  event.bandwidth_sample = best_bw;
  event.app_limited_sample = bw_app_limited;
  cc_->on_congestion_event(event);

  if (tracer_) {
    for (const auto& a : event.acked) {
      trace(trace::EventType::kPacketAcked, a.packet_number, a.bytes);
    }
    trace(trace::EventType::kRttSample,
          static_cast<uint64_t>(to_us(rtt_.latest())),
          static_cast<uint64_t>(to_us(rtt_.smoothed())));
    trace(trace::EventType::kCwndSample, cc_->congestion_window(),
          bytes_in_flight_);
    trace(trace::EventType::kPacingSample, cc_->pacing_rate());
    trace_cc_state();
  }

  if (sent_.empty()) {
    cancel_timer(pto_timer_);
    cancel_timer(loss_timer_);
  } else {
    arm_pto();
  }
  pump();
}

void Connection::detect_losses(PacketNumber largest_acked,
                               std::vector<cc::LostPacket>& lost) {
  const TimeNs rtt_for_threshold =
      rtt_.has_sample()
          ? std::max(rtt_.smoothed(), rtt_.latest())
          : kInitialRtt;
  const TimeNs time_threshold = static_cast<TimeNs>(
      kTimeReorderingFraction * static_cast<double>(rtt_for_threshold));
  TimeNs next_loss_time = kNoTime;

  for (auto it = sent_.begin(); it != sent_.end();) {
    const PacketNumber pn = it->first;
    if (pn >= largest_acked) break;
    const SentPacketInfo& info = it->second;
    const bool packet_thresh =
        largest_acked - pn >= static_cast<PacketNumber>(
                                  kPacketReorderingThreshold);
    const TimeNs lost_at = info.sent_time + time_threshold;
    const bool time_thresh = now() >= lost_at;
    if (packet_thresh || time_thresh) {
      lost.push_back(cc::LostPacket{pn, info.bytes});
      on_packet_lost_internal(pn, info);
      it = release_sent_node(it);
    } else {
      if (next_loss_time == kNoTime || lost_at < next_loss_time) {
        next_loss_time = lost_at;
      }
      ++it;
    }
  }
  if (next_loss_time != kNoTime) arm_loss_timer(next_loss_time);
}

void Connection::on_packet_lost_internal(PacketNumber pn,
                                         const SentPacketInfo& info) {
  stats_.packets_lost++;
  trace(trace::EventType::kPacketLost, pn, info.bytes);
  bytes_in_flight_ -= std::min(bytes_in_flight_, info.bytes);
  sampler_.on_packet_lost(pn);
  for (const StreamRef& ref : info.stream_refs) {
    send_stream(ref.stream_id).on_range_lost(ref.offset, ref.length, ref.fin);
    stats_.stream_bytes_retransmitted += ref.length;
  }
  if (!info.crypto_data.empty()) {
    CryptoFrame f;
    f.data = info.crypto_data;
    Packet p(&loop_.arena());
    p.type = PacketType::kInitial;
    p.conn_id = config_.conn_id;
    p.frames.emplace_back(f);
    send_packet(std::move(p), /*bypass_pacer=*/true);
  }
}

void Connection::trace_cc_state() {
  if (!tracer_) return;
  const char* state = cc_->state_name();
  if (last_cc_state_ && std::strcmp(last_cc_state_, state) == 0) return;
  last_cc_state_ = state;
  trace(trace::EventType::kCcStateChanged, 0, 0, state);
}

// ------------------------------------------------------------------- timers

void Connection::cancel_timer(std::optional<sim::EventId>& id) {
  if (id) {
    loop_.cancel(*id);
    id.reset();
  }
}

void Connection::arm_loss_timer(TimeNs when) {
  cancel_timer(loss_timer_);
  loss_timer_ = loop_.schedule_at(when, [this] {
    loss_timer_.reset();
    on_loss_timer();
  });
}

void Connection::on_loss_timer() {
  if (closed_) return;
  cc::CongestionEvent& event = scratch_event_;
  event.acked.clear();
  event.lost.clear();
  detect_losses(largest_acked_, event.lost);
  if (!event.lost.empty()) {
    event.now = now();
    event.prior_bytes_in_flight = bytes_in_flight_;
    event.latest_rtt = rtt_.latest();
    event.min_rtt = rtt_.min();
    event.smoothed_rtt = rtt_.smoothed();
    event.bandwidth_sample = 0;
    event.app_limited_sample = false;
    cc_->on_congestion_event(event);
    trace_cc_state();
    pump();
  }
}

void Connection::arm_pto() {
  cancel_timer(pto_timer_);
  const TimeNs timeout = rtt_.pto(config_.max_ack_delay) << pto_count_;
  pto_timer_ = loop_.schedule_in(timeout, [this] {
    pto_timer_.reset();
    on_pto();
  });
}

void Connection::on_pto() {
  if (closed_ || sent_.empty()) return;
  stats_.ptos_fired++;
  trace(trace::EventType::kPtoFired, static_cast<uint64_t>(pto_count_));
  pto_count_ = std::min(pto_count_ + 1, 6);

  // Probe: treat the oldest in-flight packet's payload as needing resend.
  // Extract (not erase) so the node can be recycled at the end; the node
  // must stay out of the free list until after the crypto re-send below,
  // whose frame span borrows info.crypto_data — recycling earlier would
  // let send_packet assign into the very buffer the span points at.
  auto nh = sent_.extract(sent_.begin());
  const PacketNumber pn = nh.key();
  const SentPacketInfo& info = nh.mapped();
  bytes_in_flight_ -= std::min(bytes_in_flight_, info.bytes);
  sampler_.on_packet_lost(pn);
  for (const StreamRef& ref : info.stream_refs) {
    send_stream(ref.stream_id).on_range_lost(ref.offset, ref.length, ref.fin);
    stats_.stream_bytes_retransmitted += ref.length;
  }
  if (!info.crypto_data.empty()) {
    CryptoFrame f;
    f.data = info.crypto_data;
    Packet p(&loop_.arena());
    p.type = PacketType::kInitial;
    p.conn_id = config_.conn_id;
    p.frames.emplace_back(f);
    send_packet(std::move(p), /*bypass_pacer=*/true);
  }
  if (pto_count_ >= 2) {
    cc_->on_retransmission_timeout(now());
    trace_cc_state();
  }
  arm_pto();
  pump();

  // Nothing pending (e.g. pure-probe case): keep the timer armed while
  // packets remain in flight.
  if (!sent_.empty() && !pto_timer_) arm_pto();

  // Safe to recycle now — no borrowed span into the node is live anymore.
  free_sent_nodes_.push_back(std::move(nh));
}

}  // namespace wira::quic
