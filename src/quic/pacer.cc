#include "quic/pacer.h"

// Pacer is header-only; this translation unit anchors the library target.
namespace wira::quic {}
