// gQUIC-style tag-value crypto handshake messages (CHLO / REJ / SHLO) and
// the Wira HQST tag carried in CHLO packets (§IV-B, Fig. 8).
//
// Message wire format (simplified Q043):
//   msg_tag u32be | num_pairs u16be | reserved u16be |
//   num_pairs * { tag u32be, end_offset u32be } | value bytes (concatenated)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/units.h"

namespace wira::quic {

/// FourCC helper: tag('C','H','L','O').
constexpr uint32_t make_tag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) << 24 |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(d));
}

// Message tags.
inline constexpr uint32_t kTagCHLO = make_tag('C', 'H', 'L', 'O');
inline constexpr uint32_t kTagREJ = make_tag('R', 'E', 'J', '\0');
inline constexpr uint32_t kTagSHLO = make_tag('S', 'H', 'L', 'O');

// Value tags.
inline constexpr uint32_t kTagVER = make_tag('V', 'E', 'R', '\0');
inline constexpr uint32_t kTagSCFG = make_tag('S', 'C', 'F', 'G');
inline constexpr uint32_t kTagSCID = make_tag('S', 'C', 'I', 'D');
inline constexpr uint32_t kTagSNI = make_tag('S', 'N', 'I', '\0');
/// Wira: Hx_QoS synchronization support + cookie echo (the paper's new tag).
inline constexpr uint32_t kTagHQST = make_tag('H', 'Q', 'S', 'T');

struct HandshakeMessage {
  uint32_t msg_tag = 0;
  std::map<uint32_t, std::vector<uint8_t>> values;

  bool has(uint32_t tag) const { return values.count(tag) > 0; }
  std::span<const uint8_t> get(uint32_t tag) const;
  void set(uint32_t tag, std::span<const uint8_t> value);
  void set_u64(uint32_t tag, uint64_t value);
  std::optional<uint64_t> get_u64(uint32_t tag) const;
  void set_str(uint32_t tag, std::string_view s);
};

std::vector<uint8_t> serialize_handshake(const HandshakeMessage& msg);
std::optional<HandshakeMessage> parse_handshake(
    std::span<const uint8_t> data);

/// Payload of the HQST tag (Fig. 8): support flag, the client's receive
/// timestamp of the last Hx_QoS packet, and the opaque sealed cookie.
/// `TagLen > sizeof(TagID)+sizeof(TagLen)+sizeof(Bool)` in the paper maps
/// here to "sealed_cookie non-empty".
struct HqstPayload {
  bool supports_sync = false;
  uint64_t client_recv_time_ms = 0;  ///< when the client stored the cookie
  std::vector<uint8_t> sealed_cookie;
};

std::vector<uint8_t> serialize_hqst(const HqstPayload& p);
std::optional<HqstPayload> parse_hqst(std::span<const uint8_t> data);

}  // namespace wira::quic
